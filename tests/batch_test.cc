/**
 * @file
 * Batched lockstep multi-simulation tests.
 *
 * The tentpole contract of machine::MachineBatch: batching is an
 * execution detail, invisible to results. Every lane's Measurement,
 * sampled series, and checkpoint image must be byte-identical to the
 * same configuration run solo, at every batch size and shard count;
 * cache entries written by batched runs must serve solo runs and vice
 * versa; and malformed batches (empty, mixed shapes, tracing) must
 * die with a clear message, like the --shards validation they mirror.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "cache/key.hh"
#include "cache/store.hh"
#include "machine/batch.hh"
#include "machine/machine.hh"
#include "obs/sampler.hh"
#include "util/serialize.hh"
#include "util/simd.hh"
#include "workload/mapping.hh"

namespace locsim {
namespace machine {
namespace {

namespace fs = std::filesystem;

/** Serialize a Measurement to its exact cache-payload bytes. */
std::vector<std::uint8_t>
measurementBytes(const Measurement &m)
{
    util::Serializer s;
    saveMeasurement(s, m);
    return s.takeBuffer();
}

/** A small 4^2 validation machine; cheap enough for K x shard grids. */
MachineConfig
smallConfig(int contexts = 1, int shards = 1)
{
    MachineConfig config;
    config.radix = 4;
    config.dims = 2;
    config.contexts = contexts;
    config.shards = shards;
    return config;
}

/** Lane specs sharing the 4^2 shape but varying everything else. */
std::vector<BatchLaneSpec>
laneSpecs(int lanes, int shards)
{
    std::vector<BatchLaneSpec> specs;
    for (int l = 0; l < lanes; ++l) {
        const workload::Mapping mapping =
            (l % 2 == 0) ? workload::Mapping::random(
                               16, static_cast<std::uint64_t>(7 + l))
                         : workload::Mapping::identity(16);
        specs.push_back({smallConfig(1 + l % 3, shards), mapping});
    }
    return specs;
}

/** Unique fresh directory under the system temp dir. */
fs::path
freshDir(const std::string &tag)
{
    static std::atomic<int> serial{0};
    const fs::path dir = fs::temp_directory_path() /
                         ("locsim_batch_test_" + tag + "_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(serial++));
    fs::remove_all(dir);
    return dir;
}

/**
 * The headline: at K in {1, 2, 4, 8} and 1 or 2 shards, every lane's
 * Measurement is byte-identical to the same spec run solo (itself
 * shard-count-invariant, locked in by machine_test.cc). Any
 * divergence means lanes leaked state into each other — a mis-strided
 * channel id, a shared RNG, a stats merge crossing lanes.
 */
TEST(Batch, LanesBitIdenticalToSoloAtEverySizeAndShardCount)
{
    constexpr std::uint64_t kWarmup = 800, kWindow = 2500;
    // Solo oracles for the largest spec set; smaller K reuse a prefix.
    const std::vector<BatchLaneSpec> all = laneSpecs(8, 1);
    std::vector<std::vector<std::uint8_t>> solo;
    for (const BatchLaneSpec &spec : all) {
        Machine machine(spec.config, spec.mapping);
        solo.push_back(measurementBytes(machine.run(kWarmup, kWindow)));
    }
    for (int shards : {1, 2}) {
        for (int lanes : {1, 2, 4, 8}) {
            MachineBatch batch(laneSpecs(lanes, shards));
            const std::vector<Measurement> results =
                batch.run(kWarmup, kWindow);
            ASSERT_EQ(results.size(), static_cast<std::size_t>(lanes));
            for (int l = 0; l < lanes; ++l) {
                EXPECT_EQ(measurementBytes(results[l]),
                          solo[static_cast<std::size_t>(l)])
                    << "lane " << l << " of " << lanes << " at "
                    << shards << " shard(s)";
            }
        }
    }
}

/**
 * Non-power-of-two lane counts ride the same striding invariant: the
 * lane stride is the power-of-two ceiling of the lane count, so K in
 * {3, 5, 6} leaves pad lanes between logical channels. Pad ids are
 * never allocated or published, so every live lane must still match
 * its solo oracle bit for bit at 1 and 2 shards.
 */
TEST(Batch, NonPowerOfTwoLaneCountsBitIdenticalToSolo)
{
    constexpr std::uint64_t kWarmup = 800, kWindow = 2500;
    const std::vector<BatchLaneSpec> all = laneSpecs(6, 1);
    std::vector<std::vector<std::uint8_t>> solo;
    for (const BatchLaneSpec &spec : all) {
        Machine machine(spec.config, spec.mapping);
        solo.push_back(measurementBytes(machine.run(kWarmup, kWindow)));
    }
    for (int shards : {1, 2}) {
        for (int lanes : {3, 5, 6}) {
            MachineBatch batch(laneSpecs(lanes, shards));
            const std::vector<Measurement> results =
                batch.run(kWarmup, kWindow);
            ASSERT_EQ(results.size(), static_cast<std::size_t>(lanes));
            for (int l = 0; l < lanes; ++l) {
                EXPECT_EQ(measurementBytes(results[l]),
                          solo[static_cast<std::size_t>(l)])
                    << "lane " << l << " of " << lanes << " at "
                    << shards << " shard(s)";
            }
        }
    }
}

/**
 * The scalar and lane-vector kernel paths are the same simulation:
 * with the kernel level forced off (the LOCSIM_SIMD=off build's
 * steady state) a batch produces byte-identical measurements and
 * checkpoint images to the ambient level (SSE2/AVX2 where the CPU has
 * it). The level is latched at construction, so each batch here is
 * built entirely under its forced level.
 */
TEST(Batch, ScalarAndVectorKernelPathsBitIdentical)
{
    constexpr std::uint64_t kWarmup = 600, kWindow = 1800;
    const util::simd::Level ambient = util::simd::activeLevel();
    auto runAt = [&](util::simd::Level level, int lanes, int shards) {
        util::simd::setActiveLevelForTest(level);
        MachineBatch batch(laneSpecs(lanes, shards));
        const std::vector<Measurement> results =
            batch.run(kWarmup, kWindow);
        std::vector<std::vector<std::uint8_t>> bytes;
        for (const Measurement &m : results)
            bytes.push_back(measurementBytes(m));
        for (int l = 0; l < batch.lanes(); ++l)
            bytes.push_back(batch.lane(l).saveCheckpoint());
        util::simd::setActiveLevelForTest(ambient);
        return bytes;
    };
    for (int shards : {1, 2}) {
        for (int lanes : {1, 4, 5}) {
            EXPECT_EQ(runAt(util::simd::Level::Off, lanes, shards),
                      runAt(ambient, lanes, shards))
                << lanes << " lane(s) at " << shards << " shard(s)";
        }
    }
}

/** Same contract under reference stepping (rotate-all-every-tick). */
TEST(Batch, ReferenceSteppingLanesBitIdenticalToSolo)
{
    auto specs = laneSpecs(3, 1);
    for (auto &spec : specs)
        spec.config.reference_stepping = true;
    std::vector<std::vector<std::uint8_t>> solo;
    for (const BatchLaneSpec &spec : specs) {
        Machine machine(spec.config, spec.mapping);
        solo.push_back(measurementBytes(machine.run(500, 1500)));
    }
    MachineBatch batch(specs);
    const std::vector<Measurement> results = batch.run(500, 1500);
    for (std::size_t l = 0; l < specs.size(); ++l)
        EXPECT_EQ(measurementBytes(results[l]), solo[l]) << "lane " << l;
}

/**
 * Per-lane metrics samplers may differ in period and must reproduce
 * their solo series exactly — timestamps and probe values — even
 * though the batch drives every sampler from the shared lockstep
 * schedule (and credits quiescence skips to each lane).
 */
TEST(Batch, SamplerSeriesBitIdenticalToSolo)
{
    auto seriesDump = [](Machine &machine) {
        const obs::MetricsSampler &sampler = *machine.sampler();
        std::ostringstream out;
        for (const sim::Tick t : sampler.times())
            out << t << "\n";
        for (std::size_t p = 0; p < sampler.probeCount(); ++p) {
            out << sampler.probeName(p) << "\n";
            util::Serializer s;
            for (const double v : sampler.series(p))
                s.putDouble(v);
            for (const std::uint8_t byte : s.buffer())
                out << static_cast<int>(byte) << " ";
            out << "\n";
        }
        return out.str();
    };
    for (int shards : {1, 2}) {
        auto specs = laneSpecs(3, shards);
        specs[0].config.sample_period = 128;
        specs[1].config.sample_period = 0; // no sampler on this lane
        specs[2].config.sample_period = 192;
        std::vector<std::string> solo(specs.size());
        for (std::size_t l = 0; l < specs.size(); ++l) {
            if (specs[l].config.sample_period == 0)
                continue;
            Machine machine(specs[l].config, specs[l].mapping);
            machine.run(800, 2500);
            solo[l] = seriesDump(machine);
        }
        MachineBatch batch(specs);
        batch.run(800, 2500);
        for (std::size_t l = 0; l < specs.size(); ++l) {
            if (specs[l].config.sample_period == 0)
                continue;
            EXPECT_EQ(seriesDump(batch.lane(static_cast<int>(l))),
                      solo[l])
                << "lane " << l << " at " << shards << " shard(s)";
        }
    }
}

/**
 * Cache interplay, forward direction: payload bytes produced by a
 * batched lane are byte-for-byte what a solo run of the same spec
 * would store, and cache::simKey sees no difference (batch, like
 * shards, is an execution knob outside the key). So a cache warmed by
 * a batched sweep serves a later solo run as a pure hit.
 */
TEST(Batch, BatchedRunWarmsCacheForSoloRun)
{
    constexpr std::uint64_t kWarmup = 500, kWindow = 1500;
    const std::vector<BatchLaneSpec> specs = laneSpecs(3, 1);
    MachineBatch batch(specs);
    const std::vector<Measurement> results =
        batch.run(kWarmup, kWindow);

    const fs::path dir = freshDir("warm");
    cache::SimCache store(dir.string());
    std::vector<std::string> keys;
    for (std::size_t l = 0; l < specs.size(); ++l) {
        keys.push_back(cache::simKey(specs[l].config, specs[l].mapping,
                                     kWarmup, kWindow));
        const std::vector<std::uint8_t> bytes =
            measurementBytes(results[l]);
        store.getOrRun(keys.back(), [&] { return bytes; });
    }
    // Solo runs of the same specs must hit, and the recorded
    // measurement must equal what the solo machine computes.
    for (std::size_t l = 0; l < specs.size(); ++l) {
        bool computed = false;
        const std::vector<std::uint8_t> payload =
            store.getOrRun(keys[l], [&] {
                computed = true;
                return std::vector<std::uint8_t>{};
            });
        EXPECT_FALSE(computed) << "lane " << l << " missed";
        Machine machine(specs[l].config, specs[l].mapping);
        EXPECT_EQ(payload,
                  measurementBytes(machine.run(kWarmup, kWindow)))
            << "lane " << l;
    }
    EXPECT_EQ(store.stats().hits, specs.size());
    fs::remove_all(dir);
}

/**
 * Cache interplay, reverse direction: entries stored by solo runs are
 * exactly what a batched sweep of the same specs would produce, so a
 * batched run over a solo-warmed cache needs no simulation at all.
 */
TEST(Batch, SoloRunWarmsCacheForBatchedRun)
{
    constexpr std::uint64_t kWarmup = 500, kWindow = 1500;
    const std::vector<BatchLaneSpec> specs = laneSpecs(2, 1);
    const fs::path dir = freshDir("solo");
    cache::SimCache store(dir.string());
    for (const BatchLaneSpec &spec : specs) {
        Machine machine(spec.config, spec.mapping);
        const std::vector<std::uint8_t> bytes =
            measurementBytes(machine.run(kWarmup, kWindow));
        store.getOrRun(cache::simKey(spec.config, spec.mapping,
                                     kWarmup, kWindow),
                       [&] { return bytes; });
    }
    MachineBatch batch(specs);
    const std::vector<Measurement> results =
        batch.run(kWarmup, kWindow);
    for (std::size_t l = 0; l < specs.size(); ++l) {
        const auto payload = store.lookup(cache::simKey(
            specs[l].config, specs[l].mapping, kWarmup, kWindow));
        ASSERT_TRUE(payload.has_value()) << "lane " << l;
        EXPECT_EQ(*payload, measurementBytes(results[l]))
            << "lane " << l;
    }
    fs::remove_all(dir);
}

/**
 * Checkpoint interplay: a lane checkpointed mid-batch under 2 shards
 * produces the exact image a solo run of the same spec saves at the
 * same tick (checkpoint images carry no execution-strategy state),
 * and restoring that image into a fresh solo machine and extending it
 * reproduces the straight solo run byte for byte.
 */
TEST(Batch, MidBatchLaneCheckpointMatchesSoloAndRestores)
{
    constexpr std::uint64_t kHalf = 900, kWindow = 2000;
    const std::vector<BatchLaneSpec> specs = laneSpecs(3, 2);

    MachineBatch batch(specs);
    batch.advance(kHalf);
    std::vector<std::vector<std::uint8_t>> lane_images;
    for (int l = 0; l < batch.lanes(); ++l)
        lane_images.push_back(batch.lane(l).saveCheckpoint());

    for (std::size_t l = 0; l < specs.size(); ++l) {
        // Same image as a solo run paused at the same point...
        Machine solo(specs[l].config, specs[l].mapping);
        solo.advance(kHalf);
        EXPECT_EQ(lane_images[l], solo.saveCheckpoint())
            << "lane " << l;
        // ...and restoring it solo extends to the solo oracle.
        const std::vector<std::uint8_t> oracle =
            measurementBytes(solo.measure(kWindow));
        Machine restored(specs[l].config, specs[l].mapping);
        restored.restoreCheckpoint(lane_images[l]);
        EXPECT_EQ(measurementBytes(restored.measure(kWindow)), oracle)
            << "lane " << l;
    }

    // Round trip: a fresh batch restored from the mid-run images
    // continues to the same oracles as well.
    MachineBatch resumed(specs);
    resumed.restoreCheckpoints(lane_images);
    const std::vector<Measurement> results = resumed.measure(kWindow);
    for (std::size_t l = 0; l < specs.size(); ++l) {
        Machine solo(specs[l].config, specs[l].mapping);
        solo.advance(kHalf);
        EXPECT_EQ(measurementBytes(results[l]),
                  measurementBytes(solo.measure(kWindow)))
            << "lane " << l;
    }
}

/** Mixed-position images must be refused, not silently misrestored. */
TEST(Batch, RestoreRejectsImagesAtDifferentTicks)
{
    const std::vector<BatchLaneSpec> specs = laneSpecs(2, 1);
    std::vector<std::vector<std::uint8_t>> images;
    {
        MachineBatch batch(specs);
        batch.advance(500);
        images.push_back(batch.lane(0).saveCheckpoint());
    }
    {
        MachineBatch batch(specs);
        batch.advance(700);
        images.push_back(batch.lane(1).saveCheckpoint());
    }
    MachineBatch target(specs);
    EXPECT_THROW(target.restoreCheckpoints(images), std::runtime_error);
}

using BatchDeath = ::testing::Test;

TEST(BatchDeath, RejectsEmptyBatch)
{
    EXPECT_EXIT(MachineBatch(std::vector<BatchLaneSpec>{}),
                ::testing::ExitedWithCode(1),
                "batch needs at least one lane");
}

TEST(BatchDeath, RejectsMixedTopologyShapes)
{
    auto specs = laneSpecs(2, 1);
    specs[1].config.radix = 8;
    specs[1].mapping = workload::Mapping::identity(64);
    EXPECT_EXIT(MachineBatch batch(specs),
                ::testing::ExitedWithCode(1),
                "batch lanes must share one topology shape");
}

TEST(BatchDeath, RejectsMixedClockRatios)
{
    auto specs = laneSpecs(2, 1);
    specs[1].config.net_clock_ratio = 1;
    EXPECT_EXIT(MachineBatch batch(specs),
                ::testing::ExitedWithCode(1),
                "batch lanes must share one network clock ratio");
}

TEST(BatchDeath, RejectsMixedSteppingModes)
{
    auto specs = laneSpecs(2, 1);
    specs[1].config.reference_stepping = true;
    EXPECT_EXIT(MachineBatch batch(specs),
                ::testing::ExitedWithCode(1),
                "batch lanes must share one stepping mode");
}

TEST(BatchDeath, RejectsMixedShardCounts)
{
    auto specs = laneSpecs(2, 1);
    specs[1].config.shards = 2;
    EXPECT_EXIT(MachineBatch batch(specs),
                ::testing::ExitedWithCode(1),
                "batch lanes must resolve to one shard count");
}

TEST(BatchDeath, RejectsTracedLanes)
{
    auto specs = laneSpecs(2, 1);
    specs[1].config.trace.enabled = true;
    EXPECT_EXIT(MachineBatch batch(specs),
                ::testing::ExitedWithCode(1),
                "tracing is incompatible with batched execution");
}

TEST(BatchDeath, RejectsDirectRunOfBatchedLane)
{
    const std::vector<BatchLaneSpec> specs = laneSpecs(2, 1);
    MachineBatch batch(specs);
    EXPECT_EXIT(batch.lane(0).advance(100),
                ::testing::ExitedWithCode(1),
                "batched machine driven directly");
}

} // namespace
} // namespace machine
} // namespace locsim
