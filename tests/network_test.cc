/**
 * @file
 * Flit-level network tests: zero-load latency, wormhole integrity,
 * deadlock freedom under load, utilization accounting, and delivery
 * guarantees under randomized traffic.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "net/network.hh"
#include "net/traffic.hh"
#include "sim/engine.hh"
#include "util/random.hh"

namespace locsim {
namespace net {
namespace {

struct Fixture
{
    explicit Fixture(int radix = 8, int dims = 2)
    {
        NetworkConfig config;
        config.radix = radix;
        config.dims = dims;
        network = std::make_unique<Network>(engine, config);
        engine.addClocked(network.get(), 1);
    }

    sim::Engine engine;
    std::unique_ptr<Network> network;
};

/** Drain any deliveries at every node; count them. */
std::uint64_t
drainAll(Network &network)
{
    std::uint64_t count = 0;
    for (sim::NodeId n = 0; n < network.topology().nodeCount(); ++n) {
        while (network.receive(n).has_value())
            ++count;
    }
    return count;
}

TEST(Network, ZeroLoadLatencyIsHopsPlusSerialization)
{
    // An uncontended B-flit message over h hops traverses h router-to-
    // router links plus the injection and ejection links (h+2 channel
    // crossings at one cycle each), and the tail trails the head by
    // B-1 cycles; the node pops the tail the cycle it becomes visible,
    // so latency = B + h + 1.
    Fixture f;
    Message msg;
    msg.src = 0;
    msg.dst = f.network->topology().neighbor(0, 0, 1); // 1 hop
    msg.flits = 12;
    const MessageId id = f.network->send(msg);

    ASSERT_TRUE(f.engine.runUntil(
        [&] { return f.network->pendingAt(msg.dst) > 0; }, 1000));
    const MessageRecord *rec = f.network->record(id);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->hops, 1);
    const auto latency =
        static_cast<double>(rec->delivered - rec->inject_start);
    EXPECT_EQ(latency, 12.0 + 1.0 + 1.0);
}

TEST(Network, ZeroLoadLatencyScalesLinearlyWithDistance)
{
    std::map<int, double> latency_by_hops;
    for (int target_hops : {1, 2, 4, 6, 8}) {
        Fixture f;
        const TorusTopology &topo = f.network->topology();
        // Walk target_hops steps in +x/+y from node 0.
        sim::NodeId dst = 0;
        for (int i = 0; i < target_hops; ++i)
            dst = topo.neighbor(dst, i % 2, 1);
        ASSERT_EQ(topo.distance(0, dst), target_hops);

        Message msg;
        msg.src = 0;
        msg.dst = dst;
        msg.flits = 12;
        const MessageId id = f.network->send(msg);
        ASSERT_TRUE(f.engine.runUntil(
            [&] { return f.network->pendingAt(dst) > 0; }, 1000));
        const MessageRecord *rec = f.network->record(id);
        latency_by_hops[target_hops] =
            static_cast<double>(rec->delivered - rec->inject_start);
    }
    for (const auto &[hops, latency] : latency_by_hops)
        EXPECT_EQ(latency, 12.0 + hops + 1.0) << "hops=" << hops;
}

TEST(Network, WormholeKeepsMessagesContiguousPerLink)
{
    // Flit sequence checking in the ejector asserts ordering; here we
    // simply run cross traffic and rely on those asserts plus delivery.
    Fixture f;
    TrafficConfig tc;
    tc.injection_rate = 0.02;
    tc.seed = 7;
    TrafficGenerator gen(*f.network, tc);
    f.engine.addClocked(&gen, 1);
    f.engine.run(5000);
    // Let in-flight messages drain.
    gen.stop();
    ASSERT_TRUE(f.engine.runUntil(
        [&] { return f.network->idle(); }, 20000));
    drainAll(*f.network);
    EXPECT_EQ(f.network->stats().messages_delivered,
              f.network->stats().messages_sent);
}

TEST(Network, SelfMessagesAreRejected)
{
    Fixture f;
    Message msg;
    msg.src = 3;
    msg.dst = 3;
    msg.flits = 4;
    EXPECT_DEATH(f.network->send(msg), "local transactions");
}

TEST(Network, AllPairsDeliverExactly)
{
    // Every node sends one message to every other node; all must
    // arrive, each exactly once, at the right place (receive() checks
    // dst on ejection via internal asserts).
    Fixture f(4, 2); // 16 nodes to keep runtime modest
    const sim::NodeId n = f.network->topology().nodeCount();
    std::uint64_t sent = 0;
    for (sim::NodeId s = 0; s < n; ++s) {
        for (sim::NodeId d = 0; d < n; ++d) {
            if (s == d)
                continue;
            Message msg;
            msg.src = s;
            msg.dst = d;
            msg.flits = 12;
            f.network->send(msg);
            ++sent;
        }
    }
    ASSERT_TRUE(f.engine.runUntil(
        [&] { return f.network->idle(); }, 200000));
    EXPECT_EQ(drainAll(*f.network), sent);
    EXPECT_EQ(f.network->stats().messages_delivered, sent);
    // Average hops must equal the Equation 17 expectation exactly
    // (this *is* the all-pairs average).
    EXPECT_NEAR(f.network->stats().hops.mean(),
                randomMappingDistance(4, 2), 1e-9);
}

TEST(Network, HeavyLoadDoesNotDeadlock)
{
    // Sustained near-saturation random traffic across the dateline;
    // progress must continue (classic torus deadlock would stall all
    // deliveries).
    Fixture f;
    TrafficConfig tc;
    tc.injection_rate = 0.08; // ~saturation for B=12 random on 8x8
    tc.seed = 11;
    TrafficGenerator gen(*f.network, tc);
    f.engine.addClocked(&gen, 1);

    std::uint64_t last_delivered = 0;
    for (int epoch = 0; epoch < 10; ++epoch) {
        f.engine.run(2000);
        const std::uint64_t now_delivered =
            f.network->stats().messages_delivered;
        EXPECT_GT(now_delivered, last_delivered)
            << "no progress in epoch " << epoch;
        last_delivered = now_delivered;
    }
}

TEST(Network, UtilizationMatchesHandCount)
{
    // One message over h hops crosses exactly h network channels with
    // B flits each: utilization = h*B / (cycles * channels).
    Fixture f;
    f.network->resetStats();
    Message msg;
    msg.src = 0;
    msg.dst = f.network->topology().neighbor(
        f.network->topology().neighbor(0, 0, 1), 0, 1); // 2 hops
    msg.flits = 12;
    f.network->send(msg);
    ASSERT_TRUE(f.engine.runUntil(
        [&] { return f.network->idle(); }, 1000));
    const double cycles = static_cast<double>(f.engine.now());
    const double channels = 64.0 * 4.0;
    EXPECT_NEAR(f.network->channelUtilization(),
                2.0 * 12.0 / (cycles * channels), 1e-12);
}

TEST(Network, ResetStatsClearsAccumulators)
{
    Fixture f;
    Message msg;
    msg.src = 0;
    msg.dst = 1;
    msg.flits = 12;
    f.network->send(msg);
    ASSERT_TRUE(f.engine.runUntil(
        [&] { return f.network->idle(); }, 1000));
    EXPECT_GT(f.network->stats().latency.count(), 0u);
    f.network->resetStats();
    EXPECT_EQ(f.network->stats().latency.count(), 0u);
    EXPECT_EQ(f.network->stats().messages_sent, 0u);
    EXPECT_NEAR(f.network->channelUtilization(), 0.0, 1e-12);
}

TEST(Network, SourceQueueDelayAccountedSeparately)
{
    // Two messages submitted at once on the same node: the second must
    // wait B cycles of injection serialization, recorded as source
    // queue delay, not network latency.
    Fixture f;
    Message a, b;
    a.src = b.src = 0;
    a.dst = b.dst = 8; // one +y hop for radix 8 (node (0,1))
    a.flits = b.flits = 12;
    f.network->send(a);
    f.network->send(b);
    ASSERT_TRUE(f.engine.runUntil(
        [&] { return f.network->idle(); }, 2000));
    EXPECT_EQ(f.network->stats().source_queue.max(), 12.0);
    EXPECT_EQ(f.network->stats().source_queue.min(), 0.0);
    // Network latency for both is identical (no contention en route).
    EXPECT_EQ(f.network->stats().latency.min(),
              f.network->stats().latency.max());
}

TEST(Network, SingleFlitMessagesDeliver)
{
    // Head == tail: allocation and release happen in one traversal.
    Fixture f;
    for (int i = 0; i < 5; ++i) {
        Message msg;
        msg.src = 0;
        msg.dst = 9;
        msg.flits = 1;
        f.network->send(msg);
    }
    ASSERT_TRUE(f.engine.runUntil(
        [&] { return f.network->idle(); }, 5000));
    EXPECT_EQ(drainAll(*f.network), 5u);
}

TEST(Network, WraparoundPathsUseDatelineAndDeliver)
{
    // Route that must cross the wrap link: 6 -> 1 in a radix-8 ring
    // is 3 hops through 7 -> 0 (positive direction, wrapping).
    Fixture f(8, 1);
    Message msg;
    msg.src = 6;
    msg.dst = 1;
    msg.flits = 12;
    const MessageId id = f.network->send(msg);
    ASSERT_TRUE(f.engine.runUntil(
        [&] { return f.network->idle(); }, 1000));
    const MessageRecord *rec = f.network->record(id);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->hops, 3);
    EXPECT_EQ(drainAll(*f.network), 1u);
}

TEST(Network, ConvergingBurstBackpressuresWithoutLoss)
{
    // Every node floods one victim; credits must throttle the flood
    // (any overflow trips an internal assert) and every message must
    // arrive.
    Fixture f(4, 2);
    const sim::NodeId victim = 5;
    std::uint64_t sent = 0;
    for (sim::NodeId s = 0; s < 16; ++s) {
        if (s == victim)
            continue;
        for (int i = 0; i < 8; ++i) {
            Message msg;
            msg.src = s;
            msg.dst = victim;
            msg.flits = 12;
            f.network->send(msg);
            ++sent;
        }
    }
    ASSERT_TRUE(f.engine.runUntil(
        [&] { return f.network->idle(); }, 100000));
    EXPECT_EQ(drainAll(*f.network), sent);
    // The ejection channel is the bottleneck: total time is at least
    // sent * flits cycles of drain.
    EXPECT_GE(f.engine.now(), sent * 12);
}

TEST(Network, DeterministicAcrossRuns)
{
    auto run = [] {
        Fixture f;
        TrafficConfig tc;
        tc.injection_rate = 0.03;
        tc.seed = 99;
        TrafficGenerator gen(*f.network, tc);
        f.engine.addClocked(&gen, 1);
        f.engine.run(4000);
        return std::make_tuple(f.network->stats().messages_delivered,
                               f.network->stats().latency.mean(),
                               f.network->channelUtilization());
    };
    EXPECT_EQ(run(), run());
}

/**
 * The activity-tracked engine (dirty-channel rotation, idle-router
 * skipping, quiescence fast-forward) must be indistinguishable from
 * the dumb-stepping reference: identical message counts, identical
 * per-message latencies (accumulator sums, not just means), identical
 * utilization — tick for tick.
 */
TEST(Network, ActivityTrackingMatchesReferenceExactly)
{
    auto run = [](sim::Engine::StepMode mode, double rate) {
        Fixture f;
        f.engine.setStepMode(mode);
        TrafficConfig tc;
        tc.injection_rate = rate;
        tc.seed = 1234;
        TrafficGenerator gen(*f.network, tc);
        f.engine.addClocked(&gen, 1);
        f.engine.run(3000);
        // Stop injecting and drain so in-flight tails are compared
        // too; the generator keeps draining deliveries while the
        // fabric empties.
        gen.stop();
        f.engine.run(2000);
        const NetworkStats &s = f.network->stats();
        return std::make_tuple(
            gen.generated(), gen.received(), s.messages_sent,
            s.messages_delivered, s.latency.count(), s.latency.sum(),
            s.latency.min(), s.latency.max(), s.source_queue.sum(),
            s.hops.sum(), f.network->channelUtilization(),
            f.engine.now());
    };
    for (double rate : {0.005, 0.02, 0.08}) {
        EXPECT_EQ(run(sim::Engine::StepMode::Activity, rate),
                  run(sim::Engine::StepMode::Reference, rate))
            << "divergence at injection rate " << rate;
    }
}

/** After traffic stops and the fabric drains, the engine skips. */
TEST(Network, QuiescentFabricFastForwards)
{
    Fixture f;
    TrafficConfig tc;
    tc.injection_rate = 0.02;
    tc.seed = 7;
    TrafficGenerator gen(*f.network, tc);
    f.engine.addClocked(&gen, 1);
    f.engine.run(500);
    gen.stop();
    f.engine.run(5000); // drain, then idle
    EXPECT_TRUE(f.network->idle());
    EXPECT_EQ(gen.generated(), gen.received());
    EXPECT_GT(f.engine.skippedTicks(), 0u);
    EXPECT_EQ(f.engine.now(), 5500u);
}

TEST(Network, MeshDeliversAllPairs)
{
    // A 4x4 mesh (no wrap links): every pair must still route, with
    // hop counts following the Manhattan metric.
    sim::Engine engine;
    NetworkConfig config;
    config.radix = 4;
    config.dims = 2;
    config.wraparound = false;
    Network network(engine, config);
    engine.addClocked(&network, 1);

    std::uint64_t sent = 0;
    for (sim::NodeId s = 0; s < 16; ++s) {
        for (sim::NodeId d = 0; d < 16; ++d) {
            if (s == d)
                continue;
            Message msg;
            msg.src = s;
            msg.dst = d;
            msg.flits = 12;
            network.send(msg);
            ++sent;
        }
    }
    ASSERT_TRUE(engine.runUntil([&] { return network.idle(); },
                                200000));
    EXPECT_EQ(drainAll(network), sent);
    EXPECT_NEAR(network.stats().hops.mean(),
                network.topology().averageRandomDistance(), 1e-9);
}

TEST(Network, MeshCornerToCornerZeroLoadLatency)
{
    sim::Engine engine;
    NetworkConfig config;
    config.radix = 8;
    config.dims = 2;
    config.wraparound = false;
    Network network(engine, config);
    engine.addClocked(&network, 1);

    Message msg;
    msg.src = network.topology().nodeAt({0, 0});
    msg.dst = network.topology().nodeAt({7, 7});
    msg.flits = 12;
    const MessageId id = network.send(msg);
    ASSERT_TRUE(engine.runUntil(
        [&] { return network.pendingAt(msg.dst) > 0; }, 1000));
    const MessageRecord *rec = network.record(id);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->hops, 14);
    EXPECT_EQ(static_cast<double>(rec->delivered - rec->inject_start),
              12.0 + 14.0 + 1.0);
}

TEST(Network, MinimalRadixTwoTorus)
{
    // k = 2: every hop is simultaneously a wrap; ties resolve
    // positive. The fabric must still route and not deadlock.
    Fixture f(2, 3); // 8 nodes
    std::uint64_t sent = 0;
    for (sim::NodeId s = 0; s < 8; ++s) {
        for (sim::NodeId d = 0; d < 8; ++d) {
            if (s == d)
                continue;
            Message msg;
            msg.src = s;
            msg.dst = d;
            msg.flits = 6;
            f.network->send(msg);
            ++sent;
        }
    }
    ASSERT_TRUE(f.engine.runUntil(
        [&] { return f.network->idle(); }, 50000));
    EXPECT_EQ(drainAll(*f.network), sent);
}

/** Parameterized deadlock/delivery sweep across shapes and loads. */
class NetworkSweep
    : public ::testing::TestWithParam<std::tuple<int, int, double>>
{
};

TEST_P(NetworkSweep, DeliversEverythingEventually)
{
    const auto [radix, dims, rate] = GetParam();
    Fixture f(radix, dims);
    TrafficConfig tc;
    tc.injection_rate = rate;
    tc.seed = 1234;
    TrafficGenerator gen(*f.network, tc);
    f.engine.addClocked(&gen, 1);
    f.engine.run(3000);
    gen.stop();
    ASSERT_TRUE(f.engine.runUntil(
        [&] { return f.network->idle(); }, 300000))
        << "network failed to drain (deadlock?)";
    EXPECT_EQ(f.network->stats().messages_delivered,
              f.network->stats().messages_sent);
    EXPECT_GT(f.network->stats().messages_sent, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndLoads, NetworkSweep,
    ::testing::Values(std::make_tuple(4, 2, 0.02),
                      std::make_tuple(8, 2, 0.05),
                      std::make_tuple(4, 3, 0.03),
                      std::make_tuple(16, 1, 0.02),
                      std::make_tuple(2, 2, 0.05)));

} // namespace
} // namespace net
} // namespace locsim
