/**
 * @file
 * Link-store and rotator word-drain tests.
 *
 * The rotation phase drains whole 64-channel dirty words and hands
 * each word's bitmask to the store's publishWord(), which runs the
 * lane-vector kernels of net/kernels.hh. These tests pin the edges of
 * that scheme directly against the stores: channels straddling a
 * word boundary, a last partial word with interleaved dirty/clean
 * channels, pad slots created by power-of-two lane striding, and
 * rotation resuming after a mid-window checkpoint restore. Each case
 * runs at every kernel level the build and CPU support, so the scalar
 * fallback and the SIMD bodies are held to the same observable
 * behavior in one process.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/link_fabric.hh"
#include "util/serialize.hh"
#include "util/simd.hh"

namespace locsim {
namespace net {
namespace {

/** Kernel levels reachable on this build + CPU (always has Off). */
std::vector<util::simd::Level>
reachableLevels()
{
    const util::simd::Level ambient = util::simd::activeLevel();
    std::vector<util::simd::Level> levels = {util::simd::Level::Off};
    if (ambient >= util::simd::Level::Sse2)
        levels.push_back(util::simd::Level::Sse2);
    if (ambient >= util::simd::Level::Avx2)
        levels.push_back(util::simd::Level::Avx2);
    return levels;
}

/** RAII: force a kernel level, restore the ambient one on exit. */
class LevelGuard
{
  public:
    explicit LevelGuard(util::simd::Level level)
        : ambient_(util::simd::activeLevel())
    {
        util::simd::setActiveLevelForTest(level);
    }
    ~LevelGuard() { util::simd::setActiveLevelForTest(ambient_); }

  private:
    util::simd::Level ambient_;
};

Flit
testFlit(std::uint32_t tag)
{
    Flit flit;
    flit.msg = tag;
    flit.src = 1;
    flit.dst = 2;
    flit.seq = static_cast<std::uint16_t>(tag & 0xffff);
    flit.head = true;
    flit.tail = true;
    flit.vc = 0;
    return flit;
}

/**
 * Channels on both sides of the 64-channel word boundary: pushes
 * stage into distinct dirty words, one rotation drains both words,
 * and exactly the pushed channels become visible.
 */
TEST(LinkRotator, DrainsChannelsStraddlingWordBoundary)
{
    for (const util::simd::Level level : reachableLevels()) {
        LevelGuard guard(level);
        FlitLinkStore store(4, 1);
        std::vector<ChannelId> ids;
        for (int i = 0; i < 70; ++i)
            ids.push_back(store.add(0));
        // Dirty ids 60..69: bits 60..63 of word 0, 0..5 of word 1.
        for (ChannelId id = 60; id < 70; ++id)
            store.push(id, testFlit(id));
        for (ChannelId id = 0; id < 70; ++id)
            EXPECT_TRUE(store.empty(id)) << "pre-rotation id " << id;
        store.rotator(0)->rotate();
        for (ChannelId id = 0; id < 70; ++id) {
            if (id >= 60) {
                ASSERT_FALSE(store.empty(id)) << "id " << id;
                EXPECT_EQ(store.front(id).msg, id);
            } else {
                EXPECT_TRUE(store.empty(id)) << "id " << id;
            }
        }
    }
}

/**
 * Last-partial-word drain: with a channel count that is not a
 * multiple of 64, the tail word's high bits are pad slots. A drain of
 * an interleaved dirty pattern in that word publishes exactly the
 * dirty channels — clean neighbors and pad slots stay invisible, at
 * every kernel level (the vector bodies must not smear full-width
 * stores across clean channels).
 */
TEST(LinkRotator, LastPartialWordPublishesOnlyDirtyChannels)
{
    for (const util::simd::Level level : reachableLevels()) {
        LevelGuard guard(level);
        FlitLinkStore store(4, 1);
        constexpr ChannelId kIds = 77; // word 1 holds 13 live channels
        for (ChannelId i = 0; i < kIds; ++i)
            store.add(0);
        // Interleaved pattern across the whole store, denser in the
        // partial word so vector groups see full, partial and empty
        // masks.
        std::vector<bool> dirty(kIds, false);
        for (ChannelId id = 0; id < kIds; ++id) {
            if (id % 3 == 0 || id > 70) {
                dirty[id] = true;
                store.push(id, testFlit(id));
            }
        }
        store.rotator(0)->rotate();
        for (ChannelId id = 0; id < kIds; ++id) {
            if (dirty[id]) {
                ASSERT_FALSE(store.empty(id)) << "id " << id;
                EXPECT_EQ(store.front(id).msg, id);
                EXPECT_EQ(store.visibleCount(id), 1u);
            } else {
                EXPECT_TRUE(store.empty(id)) << "id " << id;
            }
        }
    }
}

/**
 * Credit store, same word-drain edges: per-VC staged counts publish
 * only for dirty channels of the partial word, and the per-channel
 * vector publish must not disturb a clean neighbor's visible counts.
 */
TEST(LinkRotator, CreditWordDrainKeepsCleanChannelsIntact)
{
    for (const util::simd::Level level : reachableLevels()) {
        LevelGuard guard(level);
        CreditLinkStore store(2, 1);
        constexpr ChannelId kIds = 70;
        for (ChannelId i = 0; i < kIds; ++i)
            store.add(0);
        // Pre-load a visible credit on a clean channel next to the
        // word boundary to catch cross-channel smearing.
        store.push(63, 1);
        store.rotator(0)->rotate();
        ASSERT_EQ(store.take(63, 1), 1);
        store.push(63, 1); // visible again after next rotate
        store.rotator(0)->rotate();
        for (ChannelId id = 0; id < kIds; ++id) {
            if (id % 2 == 0) {
                store.push(id, 0);
                store.push(id, 0);
                store.push(id, 1);
            }
        }
        store.rotator(0)->rotate();
        for (ChannelId id = 0; id < kIds; ++id) {
            const int expect0 = id % 2 == 0 ? 2 : 0;
            const int expect1 =
                (id % 2 == 0 ? 1 : 0) + (id == 63 ? 1 : 0);
            EXPECT_EQ(store.take(id, 0), expect0) << "id " << id;
            EXPECT_EQ(store.take(id, 1), expect1) << "id " << id;
        }
    }
}

/**
 * Lane-striding pads: a 5-lane store strides by 8, so each dirty word
 * interleaves live lanes 0..4 with pad slots 5..7. Publishing every
 * lane's copy of one logical channel in a single word drain must
 * deliver each lane's own flit and nothing else.
 */
TEST(LinkRotator, PaddedLaneStrideDrainsEachLaneIndependently)
{
    for (const util::simd::Level level : reachableLevels()) {
        LevelGuard guard(level);
        constexpr int kLanes = 5;
        FlitLinkStore store(4, 1, kLanes);
        std::vector<std::vector<ChannelId>> ids(kLanes);
        for (int lane = 0; lane < kLanes; ++lane) {
            store.beginLane(lane);
            for (int c = 0; c < 3; ++c)
                ids[static_cast<std::size_t>(lane)].push_back(
                    store.add(0));
        }
        // Lane l's logical channel c sits at id c*8 + l.
        for (int lane = 0; lane < kLanes; ++lane) {
            for (int c = 0; c < 3; ++c) {
                EXPECT_EQ(ids[static_cast<std::size_t>(lane)]
                             [static_cast<std::size_t>(c)],
                          static_cast<ChannelId>(c * 8 + lane));
            }
        }
        // Lanes 0, 2 and 4 push on logical channel 1; lanes 1 and 3
        // stay clean.
        for (const int lane : {0, 2, 4}) {
            store.push(ids[static_cast<std::size_t>(lane)][1],
                       testFlit(static_cast<std::uint32_t>(100 + lane)));
        }
        store.rotator(0)->rotate();
        for (int lane = 0; lane < kLanes; ++lane) {
            const ChannelId id =
                ids[static_cast<std::size_t>(lane)][1];
            if (lane % 2 == 0) {
                ASSERT_FALSE(store.empty(id)) << "lane " << lane;
                EXPECT_EQ(store.front(id).msg,
                          static_cast<MessageId>(100 + lane));
            } else {
                EXPECT_TRUE(store.empty(id)) << "lane " << lane;
            }
        }
    }
}

/**
 * Rotation after a mid-window checkpoint restore: a channel saved
 * with staged (unpublished) flits restores into a fresh store, and
 * the next mark + rotate publishes exactly the staged suffix — the
 * restore must leave the cursor triplet in a state the word-drain
 * path continues from seamlessly.
 */
TEST(LinkRotator, RotationAfterMidWindowRestorePublishesStagedFlits)
{
    for (const util::simd::Level level : reachableLevels()) {
        LevelGuard guard(level);
        util::Serializer s;
        {
            FlitLinkStore store(8, 1);
            for (int i = 0; i < 66; ++i)
                store.add(0);
            // Channel 65 (word 1): one visible, two staged.
            store.push(65, testFlit(1));
            store.rotator(0)->rotate();
            store.push(65, testFlit(2));
            store.push(65, testFlit(3));
            store.saveChannel(s, 65);
        }
        util::Deserializer d(s.buffer());
        FlitLinkStore restored(8, 1);
        for (int i = 0; i < 66; ++i)
            restored.add(0);
        restored.loadChannel(d, 65);
        // Restored mid-window state: flit 1 visible, 2..3 staged.
        ASSERT_EQ(restored.visibleCount(65), 1u);
        EXPECT_EQ(restored.front(65).msg, 1u);
        // A fresh push re-marks the channel; the drain publishes the
        // restored staged flits together with the new one.
        restored.push(65, testFlit(4));
        restored.rotator(0)->rotate();
        ASSERT_EQ(restored.visibleCount(65), 4u);
        for (std::uint32_t i = 0; i < 4; ++i) {
            EXPECT_EQ(restored.at(65, restored.headCursor(65) + i).msg,
                      i + 1);
        }
    }
}

} // namespace
} // namespace net
} // namespace locsim
