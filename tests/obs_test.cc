/**
 * @file
 * Unit tests for the observability layer: trace args rendering and
 * JSON escaping, tracer recording/caps/interning, serialized trace
 * syntax (validated with a minimal JSON parser), full-machine trace
 * content, sampler mode-equivalence, and merge determinism.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <sstream>
#include <string>

#include "machine/machine.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "workload/mapping.hh"

#include "json_checker.hh"

namespace locsim {
namespace obs {
namespace {

using locsim::testing::JsonChecker;

TEST(JsonChecker, AcceptsAndRejectsBasics)
{
    EXPECT_TRUE(JsonChecker("{\"a\":[1,2.5,-3e4,\"x\",true,null]}")
                    .valid());
    EXPECT_FALSE(JsonChecker("{\"a\":1").valid());
    EXPECT_FALSE(JsonChecker("{\"a\":1}trailing").valid());
    EXPECT_FALSE(JsonChecker("{\"a\":\"\x90\"}").valid());
    EXPECT_FALSE(JsonChecker("{\"a\":\"\\q\"}").valid());
}

TEST(Args, RendersTypedPairs)
{
    const std::string body = std::move(Args()
                                           .add("u", std::uint64_t{7})
                                           .add("i", -3)
                                           .add("d", 2.5)
                                           .add("s", "hi"))
                                 .str();
    EXPECT_EQ(body, "\"u\":7,\"i\":-3,\"d\":2.5,\"s\":\"hi\"");
}

TEST(Args, EscapesStrings)
{
    const std::string body =
        std::move(Args().add("s", "a\"b\\c\nd\x01")).str();
    EXPECT_EQ(body, "\"s\":\"a\\\"b\\\\c\\nd\\u0001\"");
}

TEST(Tracer, RecordsOnNamedTracksAndCapsEvents)
{
    TraceConfig config;
    config.enabled = true;
    config.max_events = 3;
    Tracer tracer(config);
    const int track = tracer.newTrack("t0");
    for (int i = 0; i < 5; ++i)
        tracer.instant(track, i, "ev", Category::Net);
    EXPECT_EQ(tracer.events().size(), 3u);
    EXPECT_EQ(tracer.dropped(), 2u);
    EXPECT_EQ(tracer.trackNames().at(0), "t0");
}

TEST(Tracer, InternedNamesSurviveTheSourceString)
{
    Tracer tracer;
    const int track = tracer.newTrack("counters");
    const char *name = nullptr;
    {
        // The source string dies before the trace is written — the
        // interned copy must not (regression: sampler probe names used
        // to dangle once the machine owning the sampler was
        // destroyed).
        const std::string transient = "rho";
        name = tracer.intern(transient);
        EXPECT_EQ(tracer.intern(transient), name); // deduplicated
    }
    tracer.counter(track, 5, name, 0.25);
    std::ostringstream os;
    tracer.write(os);
    const std::string text = os.str();
    EXPECT_TRUE(JsonChecker(text).valid()) << text;
    EXPECT_NE(text.find("\"name\":\"rho\""), std::string::npos);
}

TEST(Tracer, WritesValidSelfContainedJson)
{
    Tracer tracer;
    const int track = tracer.newTrack("net.0");
    tracer.instant(track, 1, "inject", Category::Net,
                   std::move(Args().add("msg", 1)).str());
    tracer.complete(track, 2, 10, "run", Category::Engine);
    tracer.asyncBegin(track, 3, 42, "msg", Category::Net);
    tracer.asyncEnd(track, 9, 42, "msg", Category::Net,
                    std::move(Args().add("latency", 6)).str());
    std::ostringstream os;
    tracer.write(os);
    const std::string text = os.str();
    EXPECT_TRUE(JsonChecker(text).valid()) << text;
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(text.find("\"id\":42"), std::string::npos);
}

TEST(Sampler, GaugeRateAndMeanKinds)
{
    double gauge = 3.0;
    double cumulative = 0.0;
    double sum = 0.0, count = 0.0;
    MetricsSampler sampler(10);
    sampler.addGauge("g", [&] { return gauge; });
    sampler.addRate("r", [&] { return cumulative; }, 2.0);
    sampler.addMean(
        "m", [&] { return sum; }, [&] { return count; });

    cumulative = 5.0;
    sum = 30.0;
    count = 2.0;
    sampler.tick(0);
    gauge = 4.0;
    cumulative = 10.0;
    sampler.tick(10);

    EXPECT_EQ(sampler.times().size(), 2u);
    EXPECT_DOUBLE_EQ(sampler.series(0)[1], 4.0);
    // Rate: 2.0 * (10 - 5) / 10.
    EXPECT_DOUBLE_EQ(sampler.series(1)[1], 1.0);
    // Mean window 0: (30 - 0) / (2 - 0); window 1 empty -> 0.
    EXPECT_DOUBLE_EQ(sampler.series(2)[0], 15.0);
    EXPECT_DOUBLE_EQ(sampler.series(2)[1], 0.0);
}

machine::MachineConfig
tracedConfig(bool reference)
{
    machine::MachineConfig config;
    config.contexts = 2;
    config.reference_stepping = reference;
    config.trace.enabled = true;
    config.sample_period = 200;
    return config;
}

TEST(MachineTrace, FullMachineTraceIsValidAndCoversAllLayers)
{
    const auto mapping = workload::Mapping::random(64, 3);
    machine::Machine machine(tracedConfig(false), mapping);
    machine.run(1000, 2000);

    std::ostringstream os;
    machine.writeTrace(os);
    const std::string text = os.str();
    EXPECT_TRUE(JsonChecker(text).valid());
    // Every simulated layer must contribute events.
    EXPECT_NE(text.find("\"cat\":\"engine\""), std::string::npos);
    EXPECT_NE(text.find("\"cat\":\"net\""), std::string::npos);
    EXPECT_NE(text.find("\"cat\":\"coher\""), std::string::npos);
    EXPECT_NE(text.find("\"cat\":\"proc\""), std::string::npos);
    EXPECT_NE(text.find("\"cat\":\"sampler\""), std::string::npos);
}

TEST(MachineTrace, SamplerSeriesIdenticalAcrossStepModes)
{
    const auto mapping = workload::Mapping::random(64, 5);
    machine::Machine activity(tracedConfig(false), mapping);
    machine::Machine reference(tracedConfig(true), mapping);
    activity.run(1000, 3000);
    reference.run(1000, 3000);

    const MetricsSampler *a = activity.sampler();
    const MetricsSampler *r = reference.sampler();
    ASSERT_NE(a, nullptr);
    ASSERT_NE(r, nullptr);
    ASSERT_EQ(a->times(), r->times());
    ASSERT_EQ(a->probeCount(), r->probeCount());
    for (std::size_t p = 0; p < a->probeCount(); ++p) {
        SCOPED_TRACE(a->probeName(p));
        EXPECT_EQ(a->series(p), r->series(p));
    }
}

TEST(MachineTrace, ShardOutlivesMachineAndMergesDeterministically)
{
    std::shared_ptr<Tracer> shard_a, shard_b;
    {
        machine::Machine machine(tracedConfig(false),
                                 workload::Mapping::identity(64));
        machine.run(500, 1000);
        shard_a = machine.shareTracer();
    }
    {
        machine::Machine machine(tracedConfig(false),
                                 workload::Mapping::random(64, 7));
        machine.run(500, 1000);
        shard_b = machine.shareTracer();
    }

    // Both machines are gone; the shards (including sampler counter
    // names) must still serialize to valid JSON.
    std::ostringstream first, second;
    writeMergedTrace(first, {shard_a.get(), shard_b.get()},
                     {"identity.p2", "random.p2"});
    writeMergedTrace(second, {shard_a.get(), shard_b.get()},
                     {"identity.p2", "random.p2"});
    EXPECT_TRUE(JsonChecker(first.str()).valid());
    EXPECT_EQ(first.str(), second.str());
    EXPECT_NE(first.str().find("\"pid\":1"), std::string::npos);
    EXPECT_NE(first.str().find("identity.p2"), std::string::npos);
}

TEST(MachineTrace, FlitDetailAddsFlitEvents)
{
    auto config = tracedConfig(false);
    config.trace.detail = TraceDetail::Flit;
    machine::Machine machine(config,
                             workload::Mapping::random(64, 11));
    machine.run(500, 1000);
    std::ostringstream os;
    machine.writeTrace(os);
    const std::string text = os.str();
    EXPECT_TRUE(JsonChecker(text).valid());
    EXPECT_NE(text.find("\"name\":\"flit\""), std::string::npos);
}

} // namespace
} // namespace obs
} // namespace locsim
