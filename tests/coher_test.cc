/**
 * @file
 * Coherence layer tests: cache and directory units, plus protocol
 * integration over a real network fabric (reads see writes, writers
 * serialize, invalidations and fetches work, evictions write back,
 * and races resolve).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <optional>
#include <sstream>
#include <vector>

#include "coher/cache.hh"
#include "coher/controller.hh"
#include "coher/directory.hh"
#include "net/network.hh"
#include "sim/engine.hh"
#include "util/random.hh"

namespace locsim {
namespace coher {
namespace {

TEST(Address, ComposeDecompose)
{
    const Addr addr = makeAddr(13, 42);
    EXPECT_EQ(homeOf(addr), 13u);
    EXPECT_EQ(lineIndexOf(addr), 42u);
    EXPECT_EQ(lineOf(addr + 7), addr);
}

TEST(CacheUnit, FillLookupInvalidate)
{
    Cache cache(16 * kLineBytes);
    const Addr addr = makeAddr(1, 3);
    EXPECT_EQ(cache.state(addr), CacheState::Invalid);
    EXPECT_FALSE(cache.fill(addr, CacheState::Shared, 99).has_value());
    EXPECT_EQ(cache.state(addr), CacheState::Shared);
    EXPECT_EQ(cache.lookup(addr).data, 99u);
    EXPECT_EQ(cache.residentLines(), 1u);
    cache.invalidate(addr);
    EXPECT_EQ(cache.state(addr), CacheState::Invalid);
    EXPECT_EQ(cache.residentLines(), 0u);
}

TEST(CacheUnit, DirectMappedConflictEvicts)
{
    Cache cache(4 * kLineBytes); // 4 sets
    const Addr a = makeAddr(0, 1);
    const Addr b = makeAddr(0, 5); // 5 % 4 == 1: same set as a
    cache.fill(a, CacheState::Modified, 7);
    const auto evicted = cache.fill(b, CacheState::Shared, 8);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->addr, lineOf(a));
    EXPECT_EQ(evicted->state, CacheState::Modified);
    EXPECT_EQ(evicted->data, 7u);
    EXPECT_EQ(cache.state(a), CacheState::Invalid);
    EXPECT_EQ(cache.state(b), CacheState::Shared);
}

TEST(CacheUnit, SameLineRefillNoEviction)
{
    Cache cache(4 * kLineBytes);
    const Addr a = makeAddr(2, 1);
    cache.fill(a, CacheState::Shared, 1);
    EXPECT_FALSE(cache.fill(a, CacheState::Modified, 2).has_value());
    EXPECT_EQ(cache.state(a), CacheState::Modified);
}

TEST(CacheUnit, DifferentHomesSameOffsetConflict)
{
    Cache cache(4 * kLineBytes);
    const Addr a = makeAddr(0, 1);
    const Addr b = makeAddr(3, 1); // same local offset, other home
    cache.fill(a, CacheState::Shared, 1);
    const auto evicted = cache.fill(b, CacheState::Shared, 2);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->addr, lineOf(a));
}

TEST(CacheUnit, WriteDataRequiresModified)
{
    Cache cache(4 * kLineBytes);
    const Addr a = makeAddr(0, 0);
    cache.fill(a, CacheState::Modified, 0);
    cache.writeData(a, 123);
    EXPECT_EQ(cache.lookup(a).data, 123u);
}

TEST(DirectoryUnit, SharerManagement)
{
    Directory dir(5);
    const Addr addr = makeAddr(5, 9);
    DirEntry &entry = dir.entry(addr);
    EXPECT_EQ(entry.state, DirState::Uncached);
    dir.addSharer(entry, 1);
    dir.addSharer(entry, 2);
    dir.addSharer(entry, 1); // idempotent
    EXPECT_EQ(entry.sharer_count, 2u);
    EXPECT_TRUE(dir.isSharer(entry, 1));
    dir.removeSharer(entry, 1);
    EXPECT_FALSE(dir.isSharer(entry, 1));
    EXPECT_EQ(dir.entryCount(), 1u);
    EXPECT_NE(dir.find(addr), nullptr);
    EXPECT_EQ(dir.find(makeAddr(5, 10)), nullptr);
}

TEST(DirectoryUnit, MisHomedAccessDies)
{
    Directory dir(5);
    // Both paths guard the home invariant: entry() always did; the
    // read path used to silently return nullptr for a line homed
    // elsewhere, masking routing bugs in the caller.
    EXPECT_DEATH(dir.entry(makeAddr(6, 0)), "homed elsewhere");
    EXPECT_DEATH(dir.find(makeAddr(6, 0)), "homed elsewhere");
}

TEST(DirectoryUnit, RandomizedSharerChurnMatchesOracle)
{
    // Randomized add/remove/clear churn against an insertion-ordered
    // oracle, with node ids spanning the inline-pointer capacity, the
    // overflow spill, and the fixed bitmap words (ids above 1024).
    Directory dir(3);
    DirEntry &entry = dir.entry(makeAddr(3, 1));
    std::vector<sim::NodeId> oracle;
    util::Rng rng(20260808);
    const sim::NodeId universe = 1400;

    auto verify = [&] {
        ASSERT_EQ(entry.sharer_count, oracle.size());
        const auto span = dir.sharers(entry);
        ASSERT_EQ(span.size(), oracle.size());
        for (std::size_t i = 0; i < oracle.size(); ++i)
            ASSERT_EQ(span[i], oracle[i]) << "position " << i;
        for (int probe = 0; probe < 16; ++probe) {
            const auto node = static_cast<sim::NodeId>(
                rng.nextBounded(universe));
            const bool expect = std::find(oracle.begin(), oracle.end(),
                                          node) != oracle.end();
            ASSERT_EQ(dir.isSharer(entry, node), expect)
                << "node " << node;
        }
    };

    for (int op = 0; op < 4000; ++op) {
        const double roll = rng.nextDouble();
        const auto node =
            static_cast<sim::NodeId>(rng.nextBounded(universe));
        if (roll < 0.55) {
            dir.addSharer(entry, node);
            if (std::find(oracle.begin(), oracle.end(), node) ==
                oracle.end())
                oracle.push_back(node);
        } else if (roll < 0.95) {
            dir.removeSharer(entry, node);
            auto it = std::find(oracle.begin(), oracle.end(), node);
            if (it != oracle.end())
                oracle.erase(it);
        } else {
            dir.clearSharers(entry);
            oracle.clear();
        }
        if (op % 61 == 0)
            verify();
    }
    verify();
}

TEST(DirectoryUnit, CheckpointRoundTripAcrossInlineThreshold)
{
    // Entries on both sides of the inline-pointer capacity (and one
    // crossing the 1024-node bitmap boundary) must survive a
    // save/load/save cycle byte-identically, including sharer order.
    Directory dir(0);
    const std::uint32_t widths[] = {1, kInlineSharers,
                                    kInlineSharers + 1, 40, 1100};
    std::uint32_t line = 0;
    for (std::uint32_t width : widths) {
        DirEntry &entry = dir.entry(makeAddr(0, line++));
        entry.state = DirState::Shared;
        entry.memory = 0x1000 + width;
        // Descending insertion: order must be preserved, not sorted.
        for (std::uint32_t i = width; i > 0; --i)
            dir.addSharer(entry, i);
    }
    util::Serializer first;
    dir.saveState(first);

    Directory restored(0);
    util::Deserializer d(first.buffer());
    restored.loadState(d);
    util::Serializer second;
    restored.saveState(second);
    ASSERT_EQ(first.buffer(), second.buffer());

    const DirEntry *wide = restored.find(makeAddr(0, 4));
    ASSERT_NE(wide, nullptr);
    EXPECT_EQ(wide->sharer_count, 1100u);
    EXPECT_TRUE(restored.isSharer(*wide, 1100u));
    EXPECT_FALSE(restored.isSharer(*wide, 1101u));
    EXPECT_EQ(restored.sharers(*wide).front(), 1100u);
}

TEST(ProtoMsgPacking, PackUnpackRoundTrip)
{
    ProtoMsg msg;
    msg.type = MsgType::GetX;
    msg.addr = makeAddr(3, 4);
    msg.sender = 7;
    msg.requester = 11;
    msg.data = 0xdead;
    msg.critical = true;
    const net::MessagePayload packed = packProtoMsg(msg);
    const ProtoMsg out = unpackProtoMsg(packed);
    EXPECT_EQ(out.type, MsgType::GetX);
    EXPECT_EQ(out.addr, msg.addr);
    EXPECT_EQ(out.sender, 7u);
    EXPECT_EQ(out.requester, 11u);
    EXPECT_EQ(out.data, 0xdeadu);
    EXPECT_TRUE(out.critical);
}

/**
 * A controller client that records the most recent completion (and
 * optionally forwards it), standing in for the processor.
 */
struct TestClient : MemClient
{
    std::optional<MemResponse> last;
    std::function<void(const MemResponse &)> on_complete;

    void
    memComplete(const MemResponse &resp) override
    {
        last = resp;
        if (on_complete)
            on_complete(resp);
    }
};

/**
 * Protocol harness: a small torus of controllers with no processors;
 * tests drive requests directly and step the engine.
 */
struct CoherHarness
{
    void
    build(int radix, int dims, std::uint32_t cache_bytes = 64 * 1024,
          ProtocolConfig base = ProtocolConfig{})
    {
        net::NetworkConfig nc;
        nc.radix = radix;
        nc.dims = dims;
        network = std::make_unique<net::Network>(engine, nc);
        engine.addClocked(network.get(), 1);
        ProtocolConfig pc = base;
        pc.cache_bytes = cache_bytes;
        for (sim::NodeId n = 0; n < network->topology().nodeCount();
             ++n) {
            controllers.push_back(std::make_unique<CacheController>(
                engine, *network, n, pc, 2));
            engine.addClocked(controllers.back().get(), 2);
            clients.push_back(std::make_unique<TestClient>());
            controllers.back()->setClient(clients.back().get());
        }
    }

    /** Issue a request and run until it completes; return the value. */
    std::uint64_t
    access(sim::NodeId node, bool is_store, Addr addr,
           std::uint64_t value = 0)
    {
        MemRequest req;
        req.is_store = is_store;
        req.addr = addr;
        req.store_value = value;
        req.context = 0;
        if (auto fast = controllers[node]->tryFastPath(req)) {
            last_was_txn = false;
            return fast->load_value;
        }
        TestClient &client = *clients[node];
        client.last.reset();
        controllers[node]->request(req);
        const bool done = engine.runUntil(
            [&] { return client.last.has_value(); }, 100000);
        EXPECT_TRUE(done) << "request did not complete";
        last_was_txn =
            client.last ? client.last->was_transaction : false;
        return client.last ? client.last->load_value : ~0ull;
    }

    std::uint64_t
    load(sim::NodeId node, Addr addr)
    {
        return access(node, false, addr);
    }

    void
    store(sim::NodeId node, Addr addr, std::uint64_t value)
    {
        access(node, true, addr, value);
    }

    sim::Engine engine;
    std::unique_ptr<net::Network> network;
    std::vector<std::unique_ptr<CacheController>> controllers;
    std::vector<std::unique_ptr<TestClient>> clients;
    bool last_was_txn = false;
};

class ProtocolFixture : public ::testing::Test,
                        protected CoherHarness
{
};

TEST_F(ProtocolFixture, RemoteReadSeesHomeMemory)
{
    build(2, 2); // 4 nodes
    const Addr addr = makeAddr(3, 0);
    store(3, addr, 77); // home writes locally
    EXPECT_EQ(load(0, addr), 77u);
    EXPECT_TRUE(last_was_txn);
    // Second read hits in cache: no transaction.
    EXPECT_EQ(load(0, addr), 77u);
    EXPECT_FALSE(last_was_txn);
}

TEST_F(ProtocolFixture, WriteInvalidatesReaders)
{
    build(2, 2);
    const Addr addr = makeAddr(0, 5);
    store(0, addr, 1);
    EXPECT_EQ(load(1, addr), 1u);
    EXPECT_EQ(load(2, addr), 1u);
    // Home writes again: readers' copies must be invalidated.
    store(0, addr, 2);
    EXPECT_EQ(load(1, addr), 2u);
    EXPECT_TRUE(last_was_txn); // the stale copy was invalidated
    EXPECT_EQ(load(2, addr), 2u);
}

TEST_F(ProtocolFixture, RemoteWriteTakesOwnershipFromHome)
{
    build(2, 2);
    const Addr addr = makeAddr(1, 2);
    store(2, addr, 10); // remote write: GetX path
    EXPECT_TRUE(last_was_txn);
    EXPECT_EQ(controllers[2]->cache().state(addr),
              CacheState::Modified);
    // Home reads back: must fetch from the remote owner.
    EXPECT_EQ(load(1, addr), 10u);
    EXPECT_TRUE(last_was_txn);
    // Owner demoted to Shared by the Fetch.
    EXPECT_EQ(controllers[2]->cache().state(addr),
              CacheState::Shared);
}

TEST_F(ProtocolFixture, RemoteReadFetchesFromRemoteOwner)
{
    build(2, 2);
    const Addr addr = makeAddr(1, 3);
    store(2, addr, 21); // node 2 owns a line homed at 1
    EXPECT_EQ(load(3, addr), 21u); // third party reads
    EXPECT_EQ(controllers[2]->cache().state(addr),
              CacheState::Shared);
    EXPECT_EQ(controllers[3]->cache().state(addr),
              CacheState::Shared);
}

TEST_F(ProtocolFixture, WriteAfterRemoteOwnershipInvalidatesOwner)
{
    build(2, 2);
    const Addr addr = makeAddr(1, 4);
    store(2, addr, 5);  // node 2 owns
    store(3, addr, 6);  // node 3 takes ownership (FetchInv path)
    EXPECT_EQ(controllers[2]->cache().state(addr),
              CacheState::Invalid);
    EXPECT_EQ(controllers[3]->cache().state(addr),
              CacheState::Modified);
    EXPECT_EQ(load(0, addr), 6u);
}

TEST_F(ProtocolFixture, UpgradeFromSharedInvalidatesOtherSharers)
{
    build(2, 2);
    const Addr addr = makeAddr(0, 6);
    store(0, addr, 3);
    EXPECT_EQ(load(1, addr), 3u);
    EXPECT_EQ(load(2, addr), 3u);
    store(1, addr, 4); // sharer upgrades
    EXPECT_EQ(controllers[2]->cache().state(addr),
              CacheState::Invalid);
    EXPECT_EQ(load(2, addr), 4u);
}

TEST_F(ProtocolFixture, EvictionWritesBackModifiedData)
{
    // Cache with 2 sets: two lines with the same set index force an
    // eviction of Modified data, which must reach home memory.
    build(2, 2, 2 * kLineBytes);
    const Addr a = makeAddr(1, 0);
    const Addr b = makeAddr(1, 2); // 2 % 2 == 0: conflicts with a
    store(0, a, 111);
    EXPECT_EQ(controllers[0]->cache().state(a), CacheState::Modified);
    store(0, b, 222); // evicts a -> PutX to home 1
    const bool drained = engine.runUntil(
        [&] {
            return network->idle() && controllers[1]->quiescent();
        },
        100000);
    ASSERT_TRUE(drained);
    EXPECT_EQ(controllers[0]->cache().state(a), CacheState::Invalid);
    EXPECT_GT(controllers[0]->stats().writebacks.value(), 0u);
    // Home memory must hold the evicted value.
    EXPECT_EQ(load(2, a), 111u);
}

TEST_F(ProtocolFixture, SilentSharedEvictionToleratedByHome)
{
    build(2, 2, 2 * kLineBytes);
    const Addr a = makeAddr(1, 0);
    const Addr b = makeAddr(1, 2);
    store(1, a, 9);
    EXPECT_EQ(load(0, a), 9u); // node 0 shares a
    EXPECT_EQ(load(0, b), 0u); // evicts a silently
    // Home writes: sends Inv to node 0, which is no longer a holder;
    // node 0 must ack from Invalid and the write must complete.
    store(1, a, 10);
    EXPECT_EQ(load(0, a), 10u);
}

TEST_F(ProtocolFixture, ConcurrentWritersSerialize)
{
    build(2, 2);
    const Addr addr = makeAddr(0, 7);
    // Fire two writes from different nodes in the same cycle; the
    // home must serialize them, and the final memory value must be
    // one of the two (the loser's value is overwritten or vice
    // versa -- here the later-serialized one wins).
    MemRequest w1{true, addr, 100, 0};
    MemRequest w2{true, addr, 200, 0};
    clients[1]->last.reset();
    clients[2]->last.reset();
    controllers[1]->request(w1);
    controllers[2]->request(w2);
    ASSERT_TRUE(engine.runUntil(
        [&] {
            return clients[1]->last.has_value() &&
                   clients[2]->last.has_value();
        },
        100000));
    // Exactly one node ends up the owner.
    const bool owner1 = controllers[1]->cache().state(addr) ==
                        CacheState::Modified;
    const bool owner2 = controllers[2]->cache().state(addr) ==
                        CacheState::Modified;
    EXPECT_NE(owner1, owner2);
    const std::uint64_t final = load(3, addr);
    EXPECT_TRUE(final == 100u || final == 200u);
    EXPECT_EQ(final, owner1 ? 100u : 200u);
}

TEST_F(ProtocolFixture, CriticalPathCountsMatchFlows)
{
    build(2, 2);
    const Addr addr = makeAddr(1, 8);
    store(1, addr, 1); // local, no network
    // Remote read, home has memory current... home is owner-free:
    // direct reply, c = 2.
    load(0, addr);
    EXPECT_NEAR(controllers[0]->stats().critical_messages.mean(), 2.0,
                1e-9);
    // Remote write while node 0 shares: Inv required, c = 4.
    store(2, addr, 2);
    EXPECT_NEAR(controllers[2]->stats().critical_messages.mean(), 4.0,
                1e-9);
}

TEST_F(ProtocolFixture, MessagesNeverSentForPureLocalAccess)
{
    build(2, 2);
    const Addr addr = makeAddr(2, 9);
    store(2, addr, 5);
    EXPECT_EQ(load(2, addr), 5u);
    EXPECT_EQ(controllers[2]->stats().messages_sent.value(), 0u);
    EXPECT_EQ(controllers[2]->stats().transactions.value(), 0u);
}

struct LimitlessHarness : CoherHarness
{
    void
    buildLimited(std::uint32_t pointers, std::uint32_t trap_cycles)
    {
        ProtocolConfig pc;
        pc.dir_pointers = pointers;
        pc.overflow_trap_cycles = trap_cycles;
        build(4, 2, 64 * 1024, pc);
    }
};

class LimitlessFixture : public ::testing::Test,
                         protected LimitlessHarness
{
};

TEST_F(LimitlessFixture, OverflowTrapsCountedAndCorrect)
{
    // Two hardware pointers, six readers: the third and later GetS
    // must trap, but every reader still sees the right data.
    buildLimited(2, 50);
    const Addr addr = makeAddr(0, 3);
    store(0, addr, 777);
    for (sim::NodeId reader = 1; reader <= 6; ++reader)
        EXPECT_EQ(load(reader, addr), 777u);
    EXPECT_GE(controllers[0]->stats().limitless_traps.value(), 4u);
    // Writes through the overflowed entry still invalidate everyone.
    store(0, addr, 888);
    for (sim::NodeId reader = 1; reader <= 6; ++reader)
        EXPECT_EQ(load(reader, addr), 888u);
}

TEST_F(LimitlessFixture, WithinPointerLimitNoTraps)
{
    buildLimited(4, 50);
    const Addr addr = makeAddr(0, 3);
    store(0, addr, 1);
    for (sim::NodeId reader = 1; reader <= 4; ++reader)
        EXPECT_EQ(load(reader, addr), 1u);
    EXPECT_EQ(controllers[0]->stats().limitless_traps.value(), 0u);
}

TEST_F(LimitlessFixture, OverflowSlowsOverflowedReads)
{
    // The same access pattern with and without the pointer limit:
    // the trap must make overflowed reads measurably slower.
    auto read_time = [](std::uint32_t pointers) {
        LimitlessHarness f;
        f.buildLimited(pointers, 200);
        const Addr addr = makeAddr(0, 3);
        f.store(0, addr, 5);
        for (sim::NodeId reader = 1; reader <= 5; ++reader)
            f.load(reader, addr);
        const sim::Tick before = f.engine.now();
        f.load(6, addr); // the overflowed read
        return f.engine.now() - before;
    };
    const sim::Tick limited = read_time(2);
    const sim::Tick unlimited = read_time(0);
    EXPECT_GT(limited, unlimited + 300); // 200 proc cycles = 400 ticks
}

/**
 * Verify the global cache/directory invariants after quiescing:
 *  - a Modified cache line implies its directory entry is Exclusive
 *    with that node as owner, and vice versa;
 *  - a Shared cache line implies the node is a recorded sharer and
 *    its data matches home memory (stale sharer records from silent
 *    evictions are allowed, extra copies are not).
 */
void
checkGlobalInvariants(
    const std::vector<std::unique_ptr<CacheController>> &controllers,
    const std::vector<Addr> &lines)
{
    for (Addr addr : lines) {
        const sim::NodeId home = homeOf(addr);
        const DirEntry *entry =
            controllers[home]->directory().find(addr);
        if (entry == nullptr)
            continue;
        int modified_copies = 0;
        for (const auto &controller : controllers) {
            const CacheLookup look = controller->cache().lookup(addr);
            switch (look.state) {
              case CacheState::Modified:
                ++modified_copies;
                EXPECT_EQ(entry->state, DirState::Exclusive)
                    << "line " << addr;
                EXPECT_EQ(entry->owner, controller->node());
                break;
              case CacheState::Shared:
                EXPECT_NE(entry->state, DirState::Exclusive)
                    << "line " << addr << " shared at node "
                    << controller->node();
                EXPECT_TRUE(controllers[home]->directory().isSharer(
                    *entry, controller->node()))
                    << "line " << addr;
                EXPECT_EQ(look.data, entry->memory)
                    << "stale shared data for line " << addr;
                break;
              case CacheState::Invalid:
                break;
            }
        }
        EXPECT_LE(modified_copies, 1) << "line " << addr;
        if (entry->state == DirState::Exclusive) {
            EXPECT_EQ(controllers[entry->owner]->cache().state(addr),
                      CacheState::Modified)
                << "directory claims an owner that has no Modified "
                   "copy, line "
                << addr;
        }
    }
}

TEST_F(ProtocolFixture, RandomizedStressKeepsInvariants)
{
    // 16 nodes, tiny caches (constant evictions), random concurrent
    // loads/stores over a small set of hot lines. After draining,
    // the global MSI invariants must hold for every line.
    build(4, 2, 4 * kLineBytes);
    util::Rng rng(2024);

    std::vector<Addr> lines;
    for (sim::NodeId home = 0; home < 16; home += 3) {
        for (std::uint32_t idx : {0u, 4u, 9u})
            lines.push_back(makeAddr(home, idx));
    }

    struct NodeDriver
    {
        std::uint64_t outstanding = 0;
        std::uint64_t issued = 0;
    };
    std::vector<NodeDriver> drivers(16);
    std::uint64_t completed = 0;
    for (sim::NodeId node = 0; node < 16; ++node) {
        clients[node]->on_complete =
            [&completed, &drivers, node](const MemResponse &) {
                ++completed;
                drivers[node].outstanding = 0;
            };
    }

    // Issue a few thousand operations with random pacing, at most
    // one outstanding per node (like a single-context processor).
    const std::uint64_t target_ops = 3000;
    std::uint64_t issued_total = 0;
    while (issued_total < target_ops || completed < issued_total) {
        for (sim::NodeId node = 0; node < 16; ++node) {
            NodeDriver &driver = drivers[node];
            if (driver.outstanding > 0 || issued_total >= target_ops)
                continue;
            if (!rng.nextBool(0.2))
                continue;
            MemRequest req;
            req.is_store = rng.nextBool(0.4);
            req.addr = lines[rng.nextBounded(lines.size())];
            req.store_value = rng.next();
            req.context = 0;
            if (auto fast = controllers[node]->tryFastPath(req)) {
                ++completed;
                ++issued_total;
                continue;
            }
            driver.outstanding = 1;
            ++issued_total;
            controllers[node]->request(req);
        }
        engine.run(10);
        ASSERT_LT(engine.now(), 2000000u) << "stress run stalled";
    }

    // Drain all in-flight protocol activity.
    ASSERT_TRUE(engine.runUntil(
        [&] {
            if (!network->idle())
                return false;
            for (const auto &controller : controllers) {
                if (!controller->quiescent())
                    return false;
            }
            return true;
        },
        200000));

    checkGlobalInvariants(controllers, lines);
}

TEST_F(ProtocolFixture, TracerCapturesReadMissFlow)
{
    build(2, 2);
    RingTracer tracer;
    controllers[0]->setTracer(&tracer);
    controllers[3]->setTracer(&tracer);

    const Addr addr = makeAddr(3, 0);
    store(3, addr, 5); // local write at the home: no messages
    EXPECT_TRUE(tracer.events().empty());

    EXPECT_EQ(load(0, addr), 5u); // remote read: GetS + DataS
    const auto events = tracer.eventsForLine(addr);
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].dir, TraceEvent::Dir::Send);
    EXPECT_EQ(events[0].type, MsgType::GetS);
    EXPECT_EQ(events[0].node, 0u);
    EXPECT_EQ(events[0].peer, 3u);
    EXPECT_EQ(events[1].dir, TraceEvent::Dir::Handle);
    EXPECT_EQ(events[1].type, MsgType::GetS);
    EXPECT_EQ(events[1].node, 3u);
    EXPECT_EQ(events[2].type, MsgType::DataS);
    EXPECT_EQ(events[2].dir, TraceEvent::Dir::Send);
    EXPECT_EQ(events[3].type, MsgType::DataS);
    EXPECT_EQ(events[3].dir, TraceEvent::Dir::Handle);
    // Timestamps are monotone along the flow.
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].when, events[i - 1].when);

    // Formatting is stable and greppable.
    const std::string line = formatTraceEvent(events[0]);
    EXPECT_NE(line.find("send GetS"), std::string::npos);
    EXPECT_NE(line.find("node 0"), std::string::npos);
}

TEST(RingTracerUnit, BoundedAndQueryable)
{
    RingTracer tracer(3);
    for (std::uint64_t i = 0; i < 5; ++i) {
        TraceEvent event;
        event.when = i;
        event.addr = makeAddr(1, static_cast<std::uint32_t>(i % 2));
        tracer.record(event);
    }
    EXPECT_EQ(tracer.events().size(), 3u);
    EXPECT_EQ(tracer.dropped(), 2u);
    EXPECT_EQ(tracer.events().front().when, 2u);
    EXPECT_EQ(tracer.eventsForLine(makeAddr(1, 0)).size(), 2u);
    tracer.clear();
    EXPECT_TRUE(tracer.events().empty());
    EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(CsvTracerUnit, EmitsHeaderAndRows)
{
    std::ostringstream oss;
    CsvTracer tracer(oss);
    TraceEvent event;
    event.when = 42;
    event.node = 7;
    event.dir = TraceEvent::Dir::Handle;
    event.type = MsgType::InvAck;
    event.addr = makeAddr(2, 9);
    event.peer = 1;
    tracer.record(event);
    tracer.record(event);
    const std::string out = oss.str();
    EXPECT_NE(out.find("tick,node,dir,type,home,line,peer"),
              std::string::npos);
    EXPECT_NE(out.find("42,7,handle,InvAck,2,9,1"),
              std::string::npos);
    // Header only once.
    EXPECT_EQ(out.find("tick"), out.rfind("tick"));
}

TEST_F(ProtocolFixture, LargerFabricAllPairsCoherent)
{
    build(4, 2); // 16 nodes
    const Addr addr = makeAddr(5, 1);
    for (std::uint64_t round = 1; round <= 3; ++round) {
        const sim::NodeId writer =
            static_cast<sim::NodeId>((round * 7) % 16);
        store(writer, addr, round * 1000);
        for (sim::NodeId reader = 0; reader < 16; ++reader)
            EXPECT_EQ(load(reader, addr), round * 1000)
                << "round " << round << " reader " << reader;
    }
}

} // namespace
} // namespace coher
} // namespace locsim
