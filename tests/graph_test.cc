/**
 * @file
 * Tests for communication graphs, the placement optimizer, and the
 * graph-generalized workload (including end-to-end machine runs).
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "net/topology.hh"
#include "workload/comm_graph.hh"
#include "workload/graph_app.hh"
#include "workload/placement.hh"

namespace locsim {
namespace workload {
namespace {

TEST(CommGraph, EdgeBasics)
{
    CommGraph graph(4);
    graph.addEdge(0, 1, 2.0);
    graph.addEdge(1, 2);
    graph.addEdge(0, 1, 1.0); // merges into the existing edge
    EXPECT_EQ(graph.edgeCount(), 2u);
    EXPECT_NEAR(graph.totalWeight(), 4.0, 1e-12);
    ASSERT_EQ(graph.neighbors(1).size(), 2u);
    EXPECT_NEAR(graph.neighbors(0)[0].weight, 3.0, 1e-12);
    EXPECT_NEAR(graph.averageDegree(), 1.0, 1e-12);
}

TEST(CommGraph, TorusGeneratorMatchesTopology)
{
    const CommGraph graph = CommGraph::torus(8, 2);
    EXPECT_EQ(graph.vertexCount(), 64u);
    // 2 undirected edges per vertex in a 2-D torus.
    EXPECT_EQ(graph.edgeCount(), 128u);
    // Every vertex has degree 4.
    for (std::uint32_t v = 0; v < 64; ++v)
        EXPECT_EQ(graph.neighbors(v).size(), 4u);
    EXPECT_TRUE(graph.connected());
    EXPECT_EQ(graph.diameter(), 8u); // radix-8 2-D torus: 4 + 4
}

TEST(CommGraph, RingHasHighDiameter)
{
    const CommGraph ring = CommGraph::ring(64);
    EXPECT_EQ(ring.diameter(), 32u);
    EXPECT_TRUE(ring.connected());
    EXPECT_EQ(ring.edgeCount(), 64u);
}

TEST(CommGraph, TreeAndGridShapes)
{
    const CommGraph tree = CommGraph::binaryTree(64);
    EXPECT_EQ(tree.edgeCount(), 63u);
    EXPECT_TRUE(tree.connected());

    const CommGraph grid = CommGraph::grid2d(8, 8);
    EXPECT_EQ(grid.vertexCount(), 64u);
    EXPECT_EQ(grid.edgeCount(), 2u * 7u * 8u);
    EXPECT_EQ(grid.diameter(), 14u);
}

TEST(CommGraph, RandomPeersHasLowDiameter)
{
    const CommGraph graph = CommGraph::randomPeers(64, 3, 7);
    EXPECT_TRUE(graph.connected());
    EXPECT_LE(graph.diameter(), 6u); // expander-like
    EXPECT_GE(graph.averageDegree(), 3.0);
}

TEST(CommGraph, AverageDistanceUnderIdentityOnMatchingTorus)
{
    net::TorusTopology topo(8, 2);
    const CommGraph graph = CommGraph::torus(8, 2);
    EXPECT_DOUBLE_EQ(
        graph.averageDistance(Mapping::identity(64), topo), 1.0);
    // A random placement sits near the Equation 17 expectation.
    const double d =
        graph.averageDistance(Mapping::random(64, 3), topo);
    EXPECT_GT(d, 2.5);
    EXPECT_LT(d, 5.5);
}

TEST(Placement, RecoversNearIdealTorusEmbedding)
{
    // The torus graph embeds in the torus network at d = 1; the
    // optimizer should get most of the way from ~4 to ~1.
    net::TorusTopology topo(8, 2);
    const CommGraph graph = CommGraph::torus(8, 2);
    PlacementConfig config;
    config.iterations = 120000;
    config.restarts = 2;
    config.seed = 5;
    const PlacementResult result =
        optimizePlacement(graph, topo, config);
    EXPECT_GT(result.initial_distance, 3.0);
    EXPECT_LT(result.distance, 1.8);
    EXPECT_GT(result.accepted_moves, 100u);
    // The reported distance matches the mapping it returned.
    EXPECT_NEAR(graph.averageDistance(result.mapping, topo),
                result.distance, 1e-9);
}

TEST(Placement, ImprovesEveryGraphShape)
{
    net::TorusTopology topo(8, 2);
    PlacementConfig config;
    config.iterations = 60000;
    config.restarts = 1;
    for (const CommGraph &graph :
         {CommGraph::ring(64), CommGraph::binaryTree(64),
          CommGraph::grid2d(8, 8)}) {
        const PlacementResult result =
            optimizePlacement(graph, topo, config);
        EXPECT_LT(result.distance, 0.7 * result.initial_distance);
    }
}

TEST(Placement, RandomPeersGraphBarelyImproves)
{
    // An expander has no locality to find (Section 1.1): the
    // optimizer cannot get far below the random-placement baseline.
    net::TorusTopology topo(8, 2);
    const CommGraph graph = CommGraph::randomPeers(64, 4, 11);
    PlacementConfig config;
    config.iterations = 60000;
    const PlacementResult result =
        optimizePlacement(graph, topo, config);
    EXPECT_GT(result.distance, 0.55 * result.initial_distance);
}

TEST(GraphApp, MatchesTorusProgramOnTorusGraph)
{
    // Same op stream as TorusNeighborProgram when the graph is the
    // torus (neighbor order may differ; compare as sets of addrs).
    net::TorusTopology topo(8, 2);
    const CommGraph graph = CommGraph::torus(8, 2);
    const Mapping mapping = Mapping::identity(64);
    GraphNeighborProgram program(graph, mapping, 0, 9, {});

    std::set<coher::Addr> loads;
    proc::Op op = program.start();
    while (op.kind == proc::Op::Kind::Load) {
        loads.insert(op.addr);
        op = program.next(0);
    }
    EXPECT_EQ(loads.size(), 4u);
    EXPECT_EQ(coher::homeOf(op.addr), 9u); // the store is local
}

TEST(GraphMachine, RunsRingWorkloadCoherently)
{
    machine::MachineConfig config;
    config.workload = machine::WorkloadKind::Graph;
    config.graph =
        std::make_shared<workload::CommGraph>(CommGraph::ring(64));
    machine::Machine machine(config, Mapping::random(64, 21));
    const auto m = machine.run(2000, 8000);
    EXPECT_EQ(m.violations, 0u);
    EXPECT_GT(m.iterations, 100u);
    EXPECT_GT(m.transactions, 500u);
}

TEST(GraphMachine, OptimizedPlacementOutperformsRandom)
{
    // End-to-end payoff: run the ring workload under a random and an
    // optimized placement; the optimized one must deliver a higher
    // transaction rate and lower message latency.
    net::TorusTopology topo(8, 2);
    const auto graph =
        std::make_shared<workload::CommGraph>(CommGraph::ring(64));

    PlacementConfig pconfig;
    pconfig.iterations = 60000;
    const PlacementResult placed =
        optimizePlacement(*graph, topo, pconfig);

    auto run = [&](const Mapping &mapping) {
        machine::MachineConfig config;
        config.workload = machine::WorkloadKind::Graph;
        config.graph = graph;
        machine::Machine machine(config, mapping);
        return machine.run(3000, 10000);
    };
    const auto random = run(Mapping::random(64, 33));
    const auto optimized = run(placed.mapping);
    EXPECT_EQ(optimized.violations, 0u);
    EXPECT_GT(optimized.txn_rate, random.txn_rate * 1.1);
    EXPECT_LT(optimized.message_latency, random.message_latency);
}

} // namespace
} // namespace workload
} // namespace locsim
