/**
 * @file
 * Unit tests for the stats library.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"
#include "util/random.hh"

namespace locsim {
namespace stats {
namespace {

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.variance(), 0.0);
    EXPECT_EQ(acc.min(), 0.0);
    EXPECT_EQ(acc.max(), 0.0);
}

TEST(Accumulator, MeanVarianceMinMax)
{
    Accumulator acc;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(v);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_NEAR(acc.mean(), 5.0, 1e-12);
    // Population variance is 4; sample variance is 32/7.
    EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(acc.min(), 2.0);
    EXPECT_EQ(acc.max(), 9.0);
    EXPECT_NEAR(acc.sum(), 40.0, 1e-12);
}

TEST(Accumulator, StableForModerateOffsets)
{
    // Exact sums keep full precision for integer-valued samples up to
    // ~2^26 (sum of squares stays below 2^53). Latencies, hop counts,
    // and flit counts all live far below that.
    Accumulator acc;
    const double offset = 1e6;
    for (int i = 0; i < 1000; ++i)
        acc.add(offset + (i % 2 ? 1.0 : -1.0));
    EXPECT_NEAR(acc.mean(), offset, 1e-3);
    // Sample variance of alternating +/-1 is n/(n-1).
    EXPECT_NEAR(acc.variance(), 1000.0 / 999.0, 1e-6);
}

TEST(Accumulator, MergeMatchesSequential)
{
    util::Rng rng(5);
    Accumulator whole, left, right;
    for (int i = 0; i < 500; ++i) {
        const double v = rng.nextDouble() * 100.0;
        whole.add(v);
        (i < 250 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
    EXPECT_EQ(left.min(), whole.min());
    EXPECT_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeIsBitIdenticalForIntegerSamples)
{
    // The sharded engine splits one statistics stream across shards
    // and merges; for the integer-valued samples the simulator emits,
    // every grouping must reproduce the sequential result bit-for-bit.
    util::Rng rng(17);
    std::vector<double> samples;
    for (int i = 0; i < 4096; ++i)
        samples.push_back(
            static_cast<double>(rng.next() % 100000));

    Accumulator sequential;
    for (double v : samples)
        sequential.add(v);

    for (int shards : {2, 3, 4, 7}) {
        std::vector<Accumulator> parts(shards);
        for (std::size_t i = 0; i < samples.size(); ++i)
            parts[i % shards].add(samples[i]);
        Accumulator merged;
        for (const auto &p : parts)
            merged.merge(p);
        EXPECT_EQ(merged.count(), sequential.count());
        // Bit-identical, not merely close.
        EXPECT_EQ(merged.mean(), sequential.mean());
        EXPECT_EQ(merged.sum(), sequential.sum());
        EXPECT_EQ(merged.variance(), sequential.variance());
        EXPECT_EQ(merged.min(), sequential.min());
        EXPECT_EQ(merged.max(), sequential.max());
    }
}

TEST(Histogram, MergeMatchesSequential)
{
    Histogram whole(0.0, 100.0, 10), left(0.0, 100.0, 10),
        right(0.0, 100.0, 10);
    util::Rng rng(23);
    for (int i = 0; i < 1000; ++i) {
        const double v =
            static_cast<double>(rng.next() % 120) - 5.0;
        whole.add(v);
        (i % 2 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.total(), whole.total());
    EXPECT_EQ(left.underflow(), whole.underflow());
    EXPECT_EQ(left.overflow(), whole.overflow());
    for (std::size_t i = 0; i < whole.buckets(); ++i)
        EXPECT_EQ(left.bucketCount(i), whole.bucketCount(i));
    EXPECT_EQ(left.quantile(0.5), whole.quantile(0.5));
}

TEST(Accumulator, MergeWithEmptySides)
{
    Accumulator a, b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    b.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(a.mean(), 3.0);
}

TEST(Histogram, BucketsAndOutliers)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0);  // underflow
    h.add(0.0);   // bucket 0
    h.add(1.9);   // bucket 0
    h.add(2.0);   // bucket 1
    h.add(9.99);  // bucket 4
    h.add(10.0);  // overflow
    h.add(50.0);  // overflow
    EXPECT_EQ(h.total(), 7u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_DOUBLE_EQ(h.bucketLo(1), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketHi(1), 4.0);
}

TEST(Histogram, QuantileOfUniformData)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i) + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.5);
    h.add(5.0);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.bucketCount(0), 0u);
}

TEST(TimeWeighted, PiecewiseConstantAverage)
{
    TimeWeighted tw;
    tw.update(0, 0.0);   // establishes the start; value unused till next
    tw.update(10, 1.0);  // value 1.0 held over [0, 10)
    tw.update(30, 0.5);  // value 0.5 held over [10, 30)
    // Average = (10*1.0 + 20*0.5) / 30 = 20/30.
    EXPECT_NEAR(tw.average(), 20.0 / 30.0, 1e-12);
    EXPECT_EQ(tw.elapsed(), 30u);
}

TEST(TimeWeighted, EmptyAverageIsZero)
{
    TimeWeighted tw;
    EXPECT_EQ(tw.average(), 0.0);
    tw.update(5, 2.0);
    EXPECT_EQ(tw.average(), 0.0); // no elapsed time yet
}

TEST(StatRegistry, DumpsRegisteredSources)
{
    StatRegistry reg;
    Counter c;
    Accumulator acc;
    double gauge = 1.5;
    reg.add("events", c);
    reg.add("latency", acc);
    reg.addValue("gauge", gauge);

    c.inc(3);
    acc.add(10.0);
    acc.add(20.0);
    gauge = 2.5;

    const auto snapshot = reg.dump();
    ASSERT_EQ(snapshot.size(), 4u);
    EXPECT_EQ(snapshot[0].name, "events");
    EXPECT_EQ(snapshot[0].value, 3.0);
    EXPECT_EQ(snapshot[1].name, "latency.mean");
    EXPECT_EQ(snapshot[1].value, 15.0);
    EXPECT_EQ(snapshot[2].name, "latency.count");
    EXPECT_EQ(snapshot[2].value, 2.0);
    EXPECT_EQ(snapshot[3].name, "gauge");
    EXPECT_EQ(snapshot[3].value, 2.5);

    std::ostringstream oss;
    reg.print(oss);
    EXPECT_NE(oss.str().find("latency.mean = 15"), std::string::npos);
}

TEST(StatRegistry, RvalueAddValueCapturesTheValue)
{
    // Regression: addValue with a temporary used to register a const
    // reference to the dead temporary; the dump then read freed stack
    // memory. The rvalue overload must capture by value into
    // registry-owned storage that stays stable as more entries arrive.
    StatRegistry reg;
    reg.addValue("first", 1.0 + 0.5);
    for (int i = 0; i < 100; ++i)
        reg.addValue("v" + std::to_string(i),
                     static_cast<double>(i) * 2.0);

    const auto snapshot = reg.dump();
    ASSERT_EQ(snapshot.size(), 101u);
    EXPECT_DOUBLE_EQ(snapshot[0].value, 1.5);
    EXPECT_DOUBLE_EQ(snapshot[1].value, 0.0);
    EXPECT_DOUBLE_EQ(snapshot[100].value, 198.0);
}

TEST(StatRegistry, RvalueAndReferenceEntriesCoexist)
{
    StatRegistry reg;
    double live = 1.0;
    reg.addValue("live", live);
    reg.addValue("frozen", live * 10.0);
    live = 7.0; // visible through the reference, not the captured copy

    const auto snapshot = reg.dump();
    ASSERT_EQ(snapshot.size(), 2u);
    EXPECT_DOUBLE_EQ(snapshot[0].value, 7.0);
    EXPECT_DOUBLE_EQ(snapshot[1].value, 10.0);
}

TEST(Histogram, QuantileOfEmptyHistogramIsLo)
{
    Histogram h(5.0, 10.0, 4);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

TEST(Histogram, QuantileWithSingleBucket)
{
    Histogram h(0.0, 10.0, 1);
    for (int i = 0; i < 4; ++i)
        h.add(5.0);
    // All mass in one bucket: quantiles interpolate across [0, 10).
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileWithUnderflowMass)
{
    Histogram h(10.0, 20.0, 10);
    for (int i = 0; i < 9; ++i)
        h.add(-1.0); // underflow
    h.add(15.0);
    // 90% of the mass sits below lo; low/median quantiles clamp to lo.
    EXPECT_DOUBLE_EQ(h.quantile(0.1), 10.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
    EXPECT_GT(h.quantile(0.99), 10.0);
    EXPECT_EQ(h.underflow(), 9u);
}

TEST(Histogram, QuantileWithOverflowMass)
{
    Histogram h(0.0, 10.0, 10);
    h.add(5.0);
    for (int i = 0; i < 9; ++i)
        h.add(100.0); // overflow
    // The top 90% of the mass is above hi; high quantiles report hi.
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
    EXPECT_LT(h.quantile(0.05), 10.0);
    EXPECT_EQ(h.overflow(), 9u);
}

TEST(Histogram, QuantileOutOfRangeDies)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.5);
    EXPECT_DEATH(h.quantile(-0.1), "quantile");
    EXPECT_DEATH(h.quantile(1.5), "quantile");
}

TEST(TimeWeighted, EqualTimestampsAddNoWeight)
{
    TimeWeighted tw;
    tw.update(0, 0.0);
    tw.update(10, 1.0);
    tw.update(10, 99.0); // zero-length interval: no contribution
    tw.update(20, 2.0);
    // (10*1.0 + 0*99.0 + 10*2.0) / 20 = 1.5.
    EXPECT_NEAR(tw.average(), 1.5, 1e-12);
    EXPECT_EQ(tw.elapsed(), 20u);
}

TEST(TimeWeighted, OutOfOrderUpdateDies)
{
    TimeWeighted tw;
    tw.update(10, 1.0);
    EXPECT_DEATH(tw.update(5, 2.0), "backwards");
}

} // namespace
} // namespace stats
} // namespace locsim
