/**
 * @file
 * Figure 4: average message rate r_m versus average communication
 * distance d — simulation measurements against combined-model
 * predictions, for one, two, and four hardware contexts.
 *
 * Paper claim: "predicted values for message rate are consistently
 * within a few percent of measured values."
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/common.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace locsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseHarnessOptions(
        argc, argv, "fig4_message_rate",
        "Figure 4: message rate vs distance, simulation and model");

    std::printf("=== Figure 4: message rate vs communication "
                "distance ===\n\n");

    const auto points =
        bench::runValidationSims({1, 2, 4}, options);

    util::TextTable table({"contexts", "d", "r_m measured",
                           "r_m model", "error %"});
    double worst = 0.0;
    std::vector<std::vector<std::string>> csv_rows;
    for (const auto &p : points) {
        const model::Prediction pred = bench::predictFromMeasurement(
            p.m, p.contexts, p.m.avg_hops);
        const double err = 100.0 *
                           (pred.injection_rate - p.m.message_rate) /
                           p.m.message_rate;
        worst = std::max(worst, std::fabs(err));
        table.newRow()
            .cell(static_cast<long long>(p.contexts))
            .cell(p.m.avg_hops, 2)
            .cell(p.m.message_rate, 5)
            .cell(pred.injection_rate, 5)
            .cell(err, 1);
        csv_rows.push_back(
            {std::to_string(p.contexts),
             util::formatDouble(p.m.avg_hops, 3),
             util::formatDouble(p.m.message_rate, 6),
             util::formatDouble(pred.injection_rate, 6),
             util::formatDouble(err, 2)});
    }
    table.print(std::cout);
    std::printf("\nWorst-case model error: %.1f%% (paper: "
                "\"consistently within a few percent\")\n",
                worst);

    if (!options.csv_path.empty()) {
        util::CsvWriter csv(options.csv_path);
        csv.header({"contexts", "distance", "rate_measured",
                    "rate_model", "error_pct"});
        for (const auto &row : csv_rows)
            csv.row(row);
    }
    bench::maybeReportCacheStats(options);
    bench::maybeWriteRunReport(options, points);
    return 0;
}
