/**
 * @file
 * Figure 8: the Equation 18 decomposition of the inter-transaction
 * issue time t_t into variable message overhead, fixed message
 * overhead, fixed transaction overhead, and CPU cycles — for ideal
 * and random mappings on a 1,000-processor machine with one, two,
 * and four hardware contexts.
 *
 * Paper claims: moving from ideal to random mappings drastically
 * increases only the variable message overhead, which lands roughly
 * on par with the fixed components (hence the ~2x bound at this
 * size); fixed transaction overhead is about two-thirds of the total
 * fixed component in all six cases.
 */

#include <cstdio>
#include <iostream>

#include "bench/common.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace locsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseHarnessOptions(
        argc, argv, "fig8_components",
        "Figure 8: t_t component breakdown at N = 1000 (model)");

    std::printf("=== Figure 8: components of inter-transaction time, "
                "N = 1000 ===\n");
    std::printf("all values in network cycles (Equation 18)\n\n");

    util::TextTable table({"contexts", "mapping", "variable msg",
                           "fixed msg", "fixed txn", "CPU", "t_t",
                           "fixed txn / fixed total"});
    std::vector<std::vector<std::string>> csv_rows;
    for (double contexts : {1.0, 2.0, 4.0}) {
        model::StudyConfig config =
            model::alewifeStudy(contexts, 1000, false);
        // Figure 8 shows the pure Equation 18 decomposition; the
        // paper drops the Equation 4 issue floor.
        config.enforce_issue_floor = false;
        model::LocalityAnalysis analysis(config);
        for (model::Mapping mapping :
             {model::Mapping::Ideal, model::Mapping::Random}) {
            const model::Prediction p = analysis.predict(mapping);
            const char *name =
                mapping == model::Mapping::Ideal ? "ideal" : "random";
            const double fixed_total = p.comp_fixed_msg +
                                       p.comp_fixed_txn +
                                       p.comp_cpu;
            table.newRow()
                .cell(static_cast<long long>(contexts))
                .cell(name)
                .cell(p.comp_variable_msg, 1)
                .cell(p.comp_fixed_msg, 1)
                .cell(p.comp_fixed_txn, 1)
                .cell(p.comp_cpu, 1)
                .cell(p.inter_txn_time, 1)
                .cell(p.comp_fixed_txn / fixed_total, 2);
            csv_rows.push_back(
                {util::formatDouble(contexts, 0), name,
                 util::formatDouble(p.comp_variable_msg, 3),
                 util::formatDouble(p.comp_fixed_msg, 3),
                 util::formatDouble(p.comp_fixed_txn, 3),
                 util::formatDouble(p.comp_cpu, 3)});
        }
    }
    table.print(std::cout);

    std::printf("\nPaper anchors: fixed transaction overhead ~= 2/3 "
                "of the total fixed\ncomponent in all six cases; "
                "random-mapping variable overhead lands on par\nwith "
                "the fixed components, limiting the gain to ~2 at "
                "this machine size.\n");

    if (!options.csv_path.empty()) {
        util::CsvWriter csv(options.csv_path);
        csv.header({"contexts", "mapping", "variable_msg",
                    "fixed_msg", "fixed_txn", "cpu"});
        for (const auto &row : csv_rows)
            csv.row(row);
    }
    bench::maybeWriteRunReport(options);
    return 0;
}
