/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 *
 * Each bench binary regenerates one of the paper's tables or figures
 * and prints the same rows/series the paper reports; `--csv PATH`
 * additionally dumps machine-readable data for replotting.
 */

#ifndef LOCSIM_BENCH_COMMON_HH_
#define LOCSIM_BENCH_COMMON_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "machine/calibration.hh"
#include "machine/machine.hh"
#include "model/alewife.hh"
#include "model/combined_model.hh"
#include "model/locality.hh"
#include "runner/runner.hh"
#include "util/options.hh"
#include "workload/mapping.hh"

namespace locsim {
namespace bench {

/** One validation simulation result. */
struct SimPoint
{
    std::string mapping;
    int contexts = 0;
    double distance = 0.0; //!< mapping's average distance
    machine::Measurement m;
};

/** Standard options shared by every harness. */
struct HarnessOptions
{
    std::string csv_path; //!< empty = no CSV
    bool quick = false;   //!< shorter windows for smoke runs
    std::uint64_t warmup = 6000;
    std::uint64_t window = 20000;
    /** Worker threads for independent simulations (0 = all cores). */
    int threads = 0;
};

/** Parse the common flags; exits on --help. */
inline HarnessOptions
parseHarnessOptions(int argc, const char *const *argv,
                    const std::string &name,
                    const std::string &summary)
{
    util::OptionParser opts(name, summary);
    opts.addString("csv", "write machine-readable results here", "");
    opts.addFlag("quick", "run shorter simulation windows");
    opts.addInt("warmup", "warmup length in processor cycles", 6000);
    opts.addInt("window", "measurement window in processor cycles",
                20000);
    opts.addInt("threads",
                "worker threads for independent simulations "
                "(0 = all cores)",
                0);
    opts.parse(argc, argv);
    HarnessOptions out;
    out.csv_path = opts.getString("csv");
    out.quick = opts.getFlag("quick");
    out.warmup = static_cast<std::uint64_t>(opts.getInt("warmup"));
    out.window = static_cast<std::uint64_t>(opts.getInt("window"));
    out.threads = opts.getInt("threads");
    if (out.quick) {
        out.warmup = 2000;
        out.window = 6000;
    }
    return out;
}

/**
 * Run the Section 3 validation simulations: the mapping family at the
 * given context counts on the 64-node Alewife-like machine.
 *
 * The (contexts, mapping) grid runs on the experiment runner's thread
 * pool; every simulation owns its full machine state, and results are
 * collected by grid index, so the output is identical to the old
 * sequential loop for any thread count.
 */
inline std::vector<SimPoint>
runValidationSims(const std::vector<int> &context_counts,
                  const HarnessOptions &options)
{
    net::TorusTopology topo(8, 2);
    const auto family = workload::experimentMappings(topo);
    struct Cell
    {
        int contexts;
        const workload::NamedMapping *named;
    };
    std::vector<Cell> grid;
    for (int contexts : context_counts) {
        for (const auto &named : family)
            grid.push_back({contexts, &named});
    }
    return runner::parallelMap(
        grid.size(),
        [&](std::size_t i) {
            const Cell &cell = grid[i];
            machine::MachineConfig config;
            config.contexts = cell.contexts;
            machine::Machine machine(config, cell.named->mapping);
            SimPoint point;
            point.mapping = cell.named->name;
            point.contexts = cell.contexts;
            point.distance = cell.named->avg_distance;
            point.m = machine.run(options.warmup, options.window);
            return point;
        },
        options.threads);
}

/**
 * Combined-model prediction fed with a simulation's *measured*
 * application parameters (the paper's validation methodology:
 * a-priori B and g, measured c, T_r and fitted T_f). Thin wrapper
 * over machine::predictFromMeasurement with the validation platform's
 * geometry.
 */
inline model::Prediction
predictFromMeasurement(const machine::Measurement &m, int contexts,
                       double distance)
{
    return machine::predictFromMeasurement(m, contexts, distance);
}

} // namespace bench
} // namespace locsim

#endif // LOCSIM_BENCH_COMMON_HH_
