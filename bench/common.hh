/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 *
 * Each bench binary regenerates one of the paper's tables or figures
 * and prints the same rows/series the paper reports; `--csv PATH`
 * additionally dumps machine-readable data for replotting.
 */

#ifndef LOCSIM_BENCH_COMMON_HH_
#define LOCSIM_BENCH_COMMON_HH_

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/key.hh"
#include "cache/prefix.hh"
#include "cache/store.hh"
#include "machine/batch.hh"
#include "machine/calibration.hh"
#include "machine/machine.hh"
#include "model/alewife.hh"
#include "model/combined_model.hh"
#include "model/locality.hh"
#include "obs/build_info.hh"
#include "obs/counters.hh"
#include "obs/profiler.hh"
#include "obs/report.hh"
#include "obs/trace.hh"
#include "runner/runner.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "workload/mapping.hh"

namespace locsim {
namespace bench {

/** One validation simulation result. */
struct SimPoint
{
    std::string mapping;
    int contexts = 0;
    double distance = 0.0; //!< mapping's average distance
    machine::Measurement m;
    /** Trace shard for this simulation (null unless --trace-out). */
    std::shared_ptr<obs::Tracer> tracer;
    /** Content-address key of this simulation (run-manifest record). */
    std::string sim_key;
};

/** Standard options shared by every harness. */
struct HarnessOptions
{
    std::string csv_path; //!< empty = no CSV
    bool quick = false;   //!< shorter windows for smoke runs
    std::uint64_t warmup = 6000;
    std::uint64_t window = 20000;
    /** Worker threads for independent simulations (0 = all cores). */
    int threads = 0;
    /**
     * Intra-simulation shards per machine (0 = MachineConfig auto:
     * LOCSIM_SHARDS when set, else sequential). Results are
     * bit-identical for every value; this is purely an execution knob.
     */
    int shards = 0;
    /**
     * Same-shape sweep cells to advance per lockstep batch (1 =
     * unbatched). Like --shards, purely an execution knob: every
     * cell's results are bit-identical at any batch size.
     */
    int batch = 1;
    /** --log-level / --trace-out / --trace-detail / --sample-period. */
    util::ObservabilityOptions obs;
    /** --attribution: add latency-decomposition columns. */
    bool attribution = false;
    /** --cache-dir: persistent simulation cache (empty = no cache). */
    std::string cache_dir;
    /** --no-cache: ignore --cache-dir (and LOCSIM_CACHE_DIR). */
    bool no_cache = false;
    /** --cache-stats: print hit/miss counters to stderr at exit. */
    bool cache_stats = false;
    /** --no-prefix-cache: run warmups from clock 0 even when cached. */
    bool no_prefix_cache = false;
    /** --prefix-rung-stride: intermediate prefix-image stride. */
    std::uint64_t prefix_rung_stride = 0;

    /**
     * The prefix-checkpoint planner (see cache/prefix.hh), created iff
     * a cache is configured and --no-prefix-cache is absent. Shared
     * for the same reason as sim_cache: one planner, one stats block.
     */
    std::shared_ptr<locsim::cache::PrefixPlanner> prefix_planner;

    /**
     * The simulation cache selected by the flags, or null. Shared so
     * SimPoint-producing helpers and the harness's own cells can use
     * one store (and one stats block).
     */
    std::shared_ptr<locsim::cache::SimCache> sim_cache;

    /**
     * The host-side phase profiler, created iff --run-report is set
     * (shards x batch slot grid). Shared so every machine the harness
     * builds can borrow a raw pointer that provably outlives it.
     */
    std::shared_ptr<obs::Profiler> profiler;

    /** Tool name and argv, recorded for the run manifest. */
    std::string tool;
    std::vector<std::string> argv;
    /** Harness start, for the manifest's wall_seconds. */
    std::chrono::steady_clock::time_point start_time;

    /**
     * True when results may be served from / stored to the cache:
     * a cache is configured and no observability sink is attached
     * (traces and samples are side effects a cached replay would
     * silently lose).
     */
    bool
    cacheUsable() const
    {
        return sim_cache != nullptr && obs.trace_out.empty() &&
               obs.sample_period == 0;
    }

    /**
     * True when cache misses should warm through the prefix planner
     * (restore a stored warmup image instead of re-simulating it).
     * Implies cacheUsable(): prefix reuse is a refinement of the
     * result cache, never a path around its gating.
     */
    bool
    prefixUsable() const
    {
        return prefix_planner != nullptr && cacheUsable();
    }
};

/** Parse the common flags; exits on --help. */
inline HarnessOptions
parseHarnessOptions(int argc, const char *const *argv,
                    const std::string &name,
                    const std::string &summary)
{
    util::OptionParser opts(name, summary);
    opts.addString("csv", "write machine-readable results here", "");
    opts.addFlag("quick", "run shorter simulation windows");
    opts.addInt("warmup", "warmup length in processor cycles", 6000);
    opts.addInt("window", "measurement window in processor cycles",
                20000);
    opts.addInt("threads",
                "worker threads for independent simulations "
                "(0 = all cores)",
                0);
    opts.addInt("shards",
                "intra-simulation shards per machine, bit-identical "
                "results at any count (0 = LOCSIM_SHARDS or "
                "sequential)",
                0);
    opts.addInt("batch",
                "same-shape sweep cells per lockstep batch, "
                "bit-identical results at any size (1 = unbatched)",
                1);
    opts.addFlag("attribution",
                 "report the latency decomposition (serialization, "
                 "hops, contention) per message");
    opts.addString("cache-dir",
                   "content-addressed simulation cache directory "
                   "(also via LOCSIM_CACHE_DIR)",
                   "");
    opts.addFlag("no-cache", "bypass the simulation cache");
    opts.addFlag("cache-stats",
                 "print cache hit/miss counters to stderr");
    opts.addFlag("no-prefix-cache",
                 "disable prefix-checkpoint warmup reuse (on by "
                 "default when --cache-dir is set; results are "
                 "bit-identical either way)");
    opts.addInt("prefix-rung-stride",
                "additionally store prefix images every N processor "
                "cycles below the warmup, so near-miss warmups share "
                "a ladder (0 = warmup boundaries only)",
                0);
    opts.addFlag("build-info",
                 "print build provenance (git SHA, compiler, flags) "
                 "and exit");
    util::addObservabilityOptions(opts);
    opts.parse(argc, argv);
    if (opts.getFlag("build-info")) {
        obs::printBuildInfo(std::cout);
        std::exit(0);
    }
    HarnessOptions out;
    out.tool = name;
    out.argv.assign(argv, argv + argc);
    out.start_time = std::chrono::steady_clock::now();
    out.csv_path = opts.getString("csv");
    out.quick = opts.getFlag("quick");
    // Validate on the raw ints: the uint64 cast below would turn a
    // negative value into an astronomically long simulation instead
    // of the diagnostic the typo deserves. A zero window measures
    // nothing and a zero warmup measures transient cold-start state;
    // both are always a mistyped flag, so fail before any simulation
    // (the --trace-out path-validation convention).
    const int warmup_arg = opts.getInt("warmup");
    const int window_arg = opts.getInt("window");
    if (warmup_arg <= 0) {
        LOCSIM_FATAL("--warmup must be a positive cycle count, got ",
                     warmup_arg);
    }
    if (window_arg <= 0) {
        LOCSIM_FATAL("--window must be a positive cycle count, got ",
                     window_arg);
    }
    out.warmup = static_cast<std::uint64_t>(warmup_arg);
    out.window = static_cast<std::uint64_t>(window_arg);
    out.threads = opts.getInt("threads");
    // 0 is the "all cores" default; an explicit non-positive count is
    // always a mistake (a shell expansion gone wrong), so reject it
    // rather than silently soaking up every core.
    if (opts.wasSet("threads") && out.threads <= 0) {
        LOCSIM_FATAL("--threads must be a positive integer, got ",
                     out.threads,
                     " (omit the flag to use all cores)");
    }
    out.shards = opts.getInt("shards");
    if (opts.wasSet("shards") && out.shards <= 0) {
        LOCSIM_FATAL("--shards must be a positive integer, got ",
                     out.shards,
                     " (omit the flag for sequential execution)");
    }
    out.batch = opts.getInt("batch");
    if (opts.wasSet("batch") && out.batch <= 0) {
        LOCSIM_FATAL("--batch must be a positive integer, got ",
                     out.batch,
                     " (omit the flag for unbatched execution)");
    }
    out.attribution = opts.getFlag("attribution");
    out.obs = util::applyObservabilityOptions(opts);
    if (out.batch > 1 && !out.obs.trace_out.empty()) {
        LOCSIM_FATAL("--batch is incompatible with --trace-out "
                     "(batch lanes share engines and cannot trace); "
                     "drop one of the flags");
    }
    // --quick shortens the *defaults*; an explicit --warmup/--window
    // always wins (previously --quick silently overwrote both).
    if (out.quick) {
        if (!opts.wasSet("warmup"))
            out.warmup = 2000;
        if (!opts.wasSet("window"))
            out.window = 6000;
    }
    out.cache_dir = opts.getString("cache-dir");
    if (out.cache_dir.empty()) {
        if (const char *env = std::getenv("LOCSIM_CACHE_DIR"))
            out.cache_dir = env;
    }
    out.no_cache = opts.getFlag("no-cache");
    out.cache_stats = opts.getFlag("cache-stats");
    out.no_prefix_cache = opts.getFlag("no-prefix-cache");
    const int rung_stride = opts.getInt("prefix-rung-stride");
    if (opts.wasSet("prefix-rung-stride") && rung_stride <= 0) {
        LOCSIM_FATAL(
            "--prefix-rung-stride must be a positive cycle count, "
            "got ",
            rung_stride, " (omit the flag for warmup-boundary-only "
            "prefix images)");
    }
    out.prefix_rung_stride =
        static_cast<std::uint64_t>(rung_stride > 0 ? rung_stride : 0);
    if (!out.cache_dir.empty() && !out.no_cache) {
        try {
            out.sim_cache = std::make_shared<locsim::cache::SimCache>(
                out.cache_dir);
        } catch (const std::exception &e) {
            LOCSIM_FATAL("--cache-dir rejected: ", e.what());
        }
    }
    if (out.sim_cache != nullptr && !out.no_prefix_cache) {
        locsim::cache::PrefixOptions prefix_options;
        prefix_options.rung_stride = out.prefix_rung_stride;
        out.prefix_planner =
            std::make_shared<locsim::cache::PrefixPlanner>(
                *out.sim_cache, prefix_options);
    }
    if (!out.obs.run_report.empty()) {
        // Slot-grid guess: explicit --shards, else LOCSIM_SHARDS,
        // else 1. Profiler::slot clamps, so an off guess degrades to
        // coarser attribution, never out-of-bounds.
        int shard_guess = out.shards;
        if (shard_guess <= 0) {
            if (const char *env = std::getenv("LOCSIM_SHARDS")) {
                const int parsed = std::atoi(env);
                if (parsed >= 1)
                    shard_guess = parsed;
            }
        }
        out.profiler = std::make_shared<obs::Profiler>(
            shard_guess > 0 ? shard_guess : 1, out.batch);
        if (out.sim_cache != nullptr)
            out.sim_cache->setProfileSlot(&out.profiler->hostSlot());
    }
    return out;
}

/**
 * Simulate (config, warmup, window) for a cache miss: through the
 * prefix planner when enabled (restore the shared warmup image, or
 * produce and store it exactly once, then measure only the window),
 * else a straight fresh-machine run. Bit-identical either way —
 * measure() resets statistics at the warmup boundary, so the recorded
 * Measurement depends only on the machine state there, which
 * restore-then-extend reproduces exactly.
 */
inline machine::Measurement
simulateForMiss(const HarnessOptions &options,
                const machine::MachineConfig &config,
                const workload::Mapping &mapping)
{
    if (options.prefixUsable()) {
        const std::unique_ptr<machine::Machine> machine =
            options.prefix_planner->warmMachine(config, mapping,
                                                options.warmup);
        return machine->measure(options.window);
    }
    machine::Machine machine(config, mapping);
    return machine.run(options.warmup, options.window);
}

/**
 * Run one (config, warmup, window) simulation through the cache:
 * serve the recorded Measurement on a hit, otherwise run the machine
 * and record it. Falls back to an uncached run when the options
 * disallow caching (no --cache-dir, or observability attached) — in
 * which case @p out_tracer (optional) receives the machine's trace
 * shard.
 */
inline machine::Measurement
runCachedMeasurement(const HarnessOptions &options,
                     const machine::MachineConfig &base_config,
                     const workload::Mapping &mapping,
                     std::shared_ptr<obs::Tracer> *out_tracer = nullptr)
{
    // --shards is an execution knob with bit-identical results, so it
    // is applied here (after key derivation inputs are fixed — simKey
    // ignores it) rather than in each harness's config construction.
    machine::MachineConfig config = base_config;
    if (options.shards != 0)
        config.shards = options.shards;
    config.profiler = options.profiler.get();
    if (!options.cacheUsable()) {
        machine::Machine machine(config, mapping);
        const machine::Measurement m =
            machine.run(options.warmup, options.window);
        if (out_tracer != nullptr)
            *out_tracer = machine.shareTracer();
        return m;
    }
    const std::string key = locsim::cache::simKey(
        config, mapping, options.warmup, options.window);
    locsim::cache::SimCache &store = *options.sim_cache;
    const std::vector<std::uint8_t> payload = store.getOrRun(key, [&] {
        const machine::Measurement m =
            simulateForMiss(options, config, mapping);
        util::Serializer s;
        machine::saveMeasurement(s, m);
        return s.takeBuffer();
    });
    try {
        util::Deserializer d(payload);
        machine::Measurement m = machine::loadMeasurement(d);
        if (!d.atEnd())
            throw std::runtime_error("trailing payload bytes");
        return m;
    } catch (const std::exception &) {
        // Corrupt entry (torn write from a crashed run, foreign
        // bytes): drop it and recompute once.
        store.remove(key);
        const machine::Measurement m =
            simulateForMiss(options, config, mapping);
        util::Serializer s;
        machine::saveMeasurement(s, m);
        store.getOrRun(key, [&] { return s.takeBuffer(); });
        return m;
    }
}

/**
 * Print the shared cache's counters to stderr (never stdout: warm
 * and cold runs must produce byte-identical standard output). No-op
 * unless --cache-stats and a cache are active.
 */
inline void
maybeReportCacheStats(const HarnessOptions &options)
{
    if (!options.cache_stats || options.sim_cache == nullptr)
        return;
    const locsim::cache::CacheStats s = options.sim_cache->stats();
    std::cerr << "cache-stats: hits=" << s.hits
              << " misses=" << s.misses << " stores=" << s.stores
              << " dedup_hits=" << s.dedup_hits
              << " prefix_hits=" << s.prefix_hits
              << " prefix_misses=" << s.prefix_misses
              << " prefix_stores=" << s.prefix_stores
              << " prefix_dedup_hits=" << s.prefix_dedup_hits
              << " dir=" << options.sim_cache->dir().string() << "\n";
}

/** Map the shared observability options onto a machine config. */
inline void
applyObservability(machine::MachineConfig &config,
                   const HarnessOptions &options)
{
    config.trace.enabled = !options.obs.trace_out.empty();
    config.trace.detail = options.obs.flit_detail
                              ? obs::TraceDetail::Flit
                              : obs::TraceDetail::Message;
    config.sample_period =
        static_cast<sim::Tick>(options.obs.sample_period);
}

/**
 * Merge the sweep's trace shards (in grid submission order, so the
 * output is identical for any worker-thread count) and write the
 * --trace-out file. No-op when tracing is off.
 */
inline void
maybeWriteTrace(const std::vector<SimPoint> &points,
                const HarnessOptions &options)
{
    if (options.obs.trace_out.empty())
        return;
    std::vector<const obs::Tracer *> shards;
    std::vector<std::string> names;
    for (const auto &p : points) {
        if (p.tracer == nullptr)
            continue;
        shards.push_back(p.tracer.get());
        names.push_back(p.mapping + ".p" +
                        std::to_string(p.contexts));
    }
    std::ofstream os(options.obs.trace_out);
    if (!os)
        LOCSIM_FATAL("cannot open --trace-out file '",
                     options.obs.trace_out, "'");
    obs::writeMergedTrace(os, shards, names);
    LOCSIM_INFORM("wrote ", shards.size(), " trace shard(s) to ",
                  options.obs.trace_out);
}

/**
 * Write the --run-report JSON manifest: invocation, build, host,
 * harness config, per-simulation cache keys, the process counter
 * registry (with the cache's stats folded in), and the phase
 * profiler's breakdown. Writes to the file only, never stdout, so
 * byte-identity checks on harness output are unaffected. No-op
 * without --run-report. Call once, after the last simulation and
 * after every Machine has been destroyed (machines publish their
 * counters on teardown).
 */
inline void
maybeWriteRunReport(const HarnessOptions &options,
                    const std::vector<SimPoint> &points = {})
{
    if (options.obs.run_report.empty())
        return;
    obs::RunReport report(options.tool);
    report.setArgv(options.argv);
    report.addConfig("quick", options.quick);
    report.addConfig("warmup",
                     static_cast<std::uint64_t>(options.warmup));
    report.addConfig("window",
                     static_cast<std::uint64_t>(options.window));
    report.addConfig("threads",
                     static_cast<long long>(options.threads));
    report.addConfig("shards", static_cast<long long>(options.shards));
    report.addConfig("batch", static_cast<long long>(options.batch));
    report.addConfig("attribution", options.attribution);
    report.addConfig("sample_period",
                     static_cast<long long>(options.obs.sample_period));
    report.addConfig("cache_dir", options.cache_dir);
    report.addConfig("cache_enabled", options.sim_cache != nullptr);
    report.addConfig("prefix_cache_enabled",
                     options.prefix_planner != nullptr);
    report.addConfig("prefix_rung_stride",
                     static_cast<std::uint64_t>(
                         options.prefix_rung_stride));
    for (const SimPoint &p : points) {
        report.addSimulation(p.mapping + ".p" +
                                 std::to_string(p.contexts),
                             p.sim_key);
    }
    obs::CounterRegistry &counters = obs::CounterRegistry::process();
    if (options.sim_cache != nullptr) {
        const locsim::cache::CacheStats s = options.sim_cache->stats();
        counters.set("cache.hits", s.hits);
        counters.set("cache.misses", s.misses);
        counters.set("cache.stores", s.stores);
        counters.set("cache.dedup_hits", s.dedup_hits);
        counters.set("cache.prefix_hits", s.prefix_hits);
        counters.set("cache.prefix_misses", s.prefix_misses);
        counters.set("cache.prefix_stores", s.prefix_stores);
        counters.set("cache.prefix_dedup_hits", s.prefix_dedup_hits);
    }
    report.setCounters(counters.snapshot());
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - options.start_time)
            .count();
    report.setProfile(options.profiler.get(), wall);
    report.writeFile(options.obs.run_report);
    LOCSIM_INFORM("wrote run manifest to ", options.obs.run_report);
}

/**
 * Mean latency decomposition per delivered message, summed over all
 * message classes of a measurement.
 */
struct AttributionSummary
{
    double serialization = 0.0;
    double hops = 0.0;
    double contention = 0.0;
};

inline AttributionSummary
summarizeAttribution(const machine::Measurement &m)
{
    AttributionSummary out;
    std::uint64_t count = 0;
    double ser = 0.0, hops = 0.0, cont = 0.0;
    for (const auto &attr : m.attribution) {
        count += attr.count;
        ser += attr.serialization;
        hops += attr.hops;
        cont += attr.contention;
    }
    if (count > 0) {
        const double n = static_cast<double>(count);
        out.serialization = ser / n;
        out.hops = hops / n;
        out.contention = cont / n;
    }
    return out;
}

/**
 * Run the Section 3 validation simulations: the mapping family at the
 * given context counts on the 64-node Alewife-like machine.
 *
 * The (contexts, mapping) grid runs on the experiment runner's thread
 * pool; every simulation owns its full machine state, and results are
 * collected by grid index, so the output is identical to the old
 * sequential loop for any thread count.
 *
 * With --batch K > 1 the grid is packed into lockstep batches of up
 * to K cells (machine::MachineBatch): the sweep's cells all share the
 * 8^2 torus shape, so any K of them can advance through one hot loop.
 * Each lane's measurement is bit-identical to a solo run, and cache
 * keys are per cell, so warm entries from unbatched runs hit and
 * entries stored by batched runs serve unbatched ones.
 */
inline std::vector<SimPoint>
runValidationSims(const std::vector<int> &context_counts,
                  const HarnessOptions &options)
{
    net::TorusTopology topo(8, 2);
    const auto family = workload::experimentMappings(topo);
    struct Cell
    {
        int contexts;
        const workload::NamedMapping *named;
    };
    std::vector<Cell> grid;
    for (int contexts : context_counts) {
        for (const auto &named : family)
            grid.push_back({contexts, &named});
    }
    if (options.batch <= 1) {
        return runner::parallelMap(
            grid.size(),
            [&](std::size_t i) {
                const Cell &cell = grid[i];
                machine::MachineConfig config;
                config.contexts = cell.contexts;
                applyObservability(config, options);
                SimPoint point;
                point.mapping = cell.named->name;
                point.contexts = cell.contexts;
                point.distance = cell.named->avg_distance;
                point.sim_key = locsim::cache::simKey(
                    config, cell.named->mapping, options.warmup,
                    options.window);
                // Cached cells return the recorded measurement
                // without simulating; the shard (tracing runs only,
                // which bypass the cache) is merged in grid order by
                // maybeWriteTrace.
                point.m = runCachedMeasurement(options, config,
                                               cell.named->mapping,
                                               &point.tracer);
                return point;
            },
            options.threads);
    }
    // Batched: probe the cache per cell, advance the misses of each
    // chunk as lanes of one MachineBatch, then record them under
    // their per-cell keys. parseHarnessOptions already rejected
    // --trace-out, so no cell needs a tracer.
    return runner::batchMap(
        grid.size(),
        // Every cell of this sweep shares the 8^2 torus shape (only
        // contexts and mapping vary), so one group covers the grid.
        [](std::size_t) { return 0; }, options.batch,
        [&](const std::vector<std::size_t> &chunk) {
            std::vector<SimPoint> points(chunk.size());
            struct Miss
            {
                std::size_t slot; //!< index into points / chunk
                std::string key;  //!< empty when the cache is off
            };
            std::vector<Miss> misses;
            std::vector<machine::BatchLaneSpec> specs;
            locsim::cache::SimCache *store =
                options.cacheUsable() ? options.sim_cache.get()
                                      : nullptr;
            for (std::size_t j = 0; j < chunk.size(); ++j) {
                const Cell &cell = grid[chunk[j]];
                machine::MachineConfig config;
                config.contexts = cell.contexts;
                applyObservability(config, options);
                if (options.shards != 0)
                    config.shards = options.shards;
                config.profiler = options.profiler.get();
                SimPoint &point = points[j];
                point.mapping = cell.named->name;
                point.contexts = cell.contexts;
                point.distance = cell.named->avg_distance;
                point.sim_key = locsim::cache::simKey(
                    config, cell.named->mapping, options.warmup,
                    options.window);
                const std::string &key = point.sim_key;
                if (store != nullptr) {
                    if (auto payload = store->lookup(key)) {
                        try {
                            util::Deserializer d(*payload);
                            point.m = machine::loadMeasurement(d);
                            if (!d.atEnd())
                                throw std::runtime_error(
                                    "trailing payload bytes");
                            // Count the hit (and re-store the bytes
                            // if another process removed the entry
                            // since the probe).
                            store->getOrRun(
                                key, [&] { return *payload; });
                            continue;
                        } catch (const std::exception &) {
                            store->remove(key);
                        }
                    }
                }
                misses.push_back({j, key});
                specs.push_back({config, cell.named->mapping});
            }
            if (!specs.empty()) {
                locsim::cache::PrefixPlanner *planner =
                    store != nullptr ? options.prefix_planner.get()
                                     : nullptr;
                const auto record =
                    [&](std::size_t miss_index,
                        const machine::Measurement &m) {
                        points[misses[miss_index].slot].m = m;
                        if (store != nullptr) {
                            util::Serializer s;
                            machine::saveMeasurement(s, m);
                            std::vector<std::uint8_t> bytes =
                                s.takeBuffer();
                            store->getOrRun(misses[miss_index].key,
                                            [&] { return bytes; });
                        }
                    };
                // Split the chunk's misses by prefix-image
                // availability: restorable lanes skip the warmup
                // entirely, cold lanes advance it once as one batch
                // (and leave images behind for every later window).
                std::vector<std::size_t> cold;
                std::vector<std::size_t> restorable;
                std::vector<std::vector<std::uint8_t>> images;
                for (std::size_t k = 0; k < specs.size(); ++k) {
                    if (planner != nullptr) {
                        if (auto image = planner->lookupImage(
                                specs[k].config, specs[k].mapping,
                                options.warmup)) {
                            restorable.push_back(k);
                            images.push_back(std::move(*image));
                            continue;
                        }
                    }
                    cold.push_back(k);
                }
                if (!restorable.empty()) {
                    std::vector<machine::BatchLaneSpec> lane_specs;
                    for (std::size_t k : restorable)
                        lane_specs.push_back(specs[k]);
                    try {
                        machine::MachineBatch batch(lane_specs);
                        batch.restoreCheckpoints(images);
                        const std::vector<machine::Measurement>
                            results = batch.measure(options.window);
                        for (std::size_t i = 0;
                             i < restorable.size(); ++i) {
                            record(restorable[i], results[i]);
                            planner->noteRestored(
                                specs[restorable[i]].config,
                                specs[restorable[i]].mapping,
                                options.warmup, images[i]);
                        }
                        restorable.clear();
                    } catch (const std::exception &) {
                        // Corrupt or stale images: drop them and
                        // demote the lanes to a cold warmup, which
                        // re-stores good images.
                        for (std::size_t k : restorable) {
                            planner->dropImage(specs[k].config,
                                               specs[k].mapping,
                                               options.warmup);
                        }
                        cold.insert(cold.end(), restorable.begin(),
                                    restorable.end());
                        restorable.clear();
                    }
                }
                if (!cold.empty()) {
                    std::vector<machine::BatchLaneSpec> lane_specs;
                    for (std::size_t k : cold)
                        lane_specs.push_back(specs[k]);
                    machine::MachineBatch batch(lane_specs);
                    batch.advance(options.warmup);
                    if (planner != nullptr) {
                        // Batched lanes save at the warmup boundary
                        // only; rung materialization is a solo-
                        // producer refinement.
                        for (std::size_t i = 0; i < cold.size();
                             ++i) {
                            planner->storeProducedImage(
                                specs[cold[i]].config,
                                specs[cold[i]].mapping,
                                options.warmup,
                                batch.lane(static_cast<int>(i))
                                    .saveCheckpoint());
                        }
                    }
                    const std::vector<machine::Measurement> results =
                        batch.measure(options.window);
                    for (std::size_t i = 0; i < cold.size(); ++i)
                        record(cold[i], results[i]);
                }
            }
            return points;
        },
        options.threads);
}

/**
 * Combined-model prediction fed with a simulation's *measured*
 * application parameters (the paper's validation methodology:
 * a-priori B and g, measured c, T_r and fitted T_f). Thin wrapper
 * over machine::predictFromMeasurement with the validation platform's
 * geometry.
 */
inline model::Prediction
predictFromMeasurement(const machine::Measurement &m, int contexts,
                       double distance)
{
    return machine::predictFromMeasurement(m, contexts, distance);
}

} // namespace bench
} // namespace locsim

#endif // LOCSIM_BENCH_COMMON_HH_
