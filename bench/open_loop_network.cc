/**
 * @file
 * Open-loop network experiment: drive the flit-level torus simulator
 * with fixed-rate Bernoulli traffic (the regime Agarwal's analysis
 * assumes) and compare measured latencies with the network model of
 * Section 2.4.
 *
 * This isolates the network-model component of the framework and
 * demonstrates the paper's Section 5 point: open-loop analysis
 * diverges as saturation approaches, while a real machine's
 * application feedback (the combined model) keeps the operating
 * point stable.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>

#include "model/network_model.hh"
#include "net/network.hh"
#include "net/traffic.hh"
#include "obs/build_info.hh"
#include "obs/counters.hh"
#include "obs/profiler.hh"
#include "obs/report.hh"
#include "sim/engine.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "util/table.hh"

using namespace locsim;

namespace {

struct OpenLoopPoint
{
    double rate;
    double latency_sim;
    double latency_model;
    double rho_sim;
    double rho_model;
};

OpenLoopPoint
runOne(double rate, sim::Tick cycles, obs::Profiler *profiler)
{
    sim::Engine engine;
    net::NetworkConfig config;
    config.radix = 8;
    config.dims = 2;
    net::Network network(engine, config);
    engine.addClocked(&network, 1);
    if (profiler != nullptr) {
        engine.setProfiler(&profiler->slot(0, 0));
        network.setProfiler(profiler, 0);
    }

    net::TrafficConfig traffic;
    traffic.injection_rate = rate;
    traffic.message_flits = 12;
    traffic.seed = 42;
    net::TrafficGenerator gen(network, traffic);
    engine.addClocked(&gen, 1);

    engine.run(cycles / 4); // warmup
    network.resetStats();
    engine.run(cycles);

    model::NetworkParams params;
    params.dims = 2;
    params.message_flits = 12;
    params.node_channel_contention = false;
    model::TorusNetworkModel model(params);
    const double kd = network.stats().hops.mean() / 2.0;

    OpenLoopPoint point;
    point.rate = rate;
    point.latency_sim = network.stats().latency.mean();
    point.rho_sim = network.channelUtilization();
    point.rho_model = model.utilization(rate, kd);
    point.latency_model =
        point.rho_model < 0.999 ? model.messageLatency(rate, kd)
                                : -1.0;
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    util::OptionParser opts("open_loop_network",
                            "open-loop network model validation");
    opts.addString("csv", "write results here", "");
    opts.addInt("cycles", "measurement window in network cycles",
                20000);
    opts.addFlag("build-info",
                 "print build provenance (git SHA, compiler, flags) "
                 "and exit");
    util::addObservabilityOptions(opts);
    opts.parse(argc, argv);
    if (opts.getFlag("build-info")) {
        obs::printBuildInfo(std::cout);
        return 0;
    }
    const util::ObservabilityOptions obs_opts =
        util::applyObservabilityOptions(opts);
    const auto cycles =
        static_cast<sim::Tick>(opts.getInt("cycles"));
    const auto start_time = std::chrono::steady_clock::now();

    // This harness runs one engine/network pair at a time, so a 1x1
    // profiler grid captures the whole run.
    std::unique_ptr<obs::Profiler> profiler;
    if (!obs_opts.run_report.empty())
        profiler = std::make_unique<obs::Profiler>(1, 1);

    std::printf("=== Open-loop network: Agarwal model vs flit-level "
                "simulation ===\n");
    std::printf("64-node radix-8 2-D torus, B = 12 flits, uniform "
                "random traffic\n\n");

    util::TextTable table({"inject rate", "rho sim", "rho model",
                           "T_m sim", "T_m model"});
    std::vector<OpenLoopPoint> points;
    for (double rate :
         {0.002, 0.005, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06}) {
        points.push_back(runOne(rate, cycles, profiler.get()));
        const OpenLoopPoint &p = points.back();
        table.newRow()
            .cell(p.rate, 3)
            .cell(p.rho_sim, 3)
            .cell(p.rho_model, 3)
            .cell(p.latency_sim, 1)
            .cell(p.latency_model < 0 ? std::string("saturated")
                                      : util::formatDouble(
                                            p.latency_model, 1));
    }
    table.print(std::cout);
    std::printf("\nOpen-loop latency diverges near saturation "
                "(rho -> 1); in the full machine, the\napplication's "
                "negative feedback (Section 2.5) pins the operating "
                "point below this.\n");

    const std::string csv_path = opts.getString("csv");
    if (!csv_path.empty()) {
        util::CsvWriter csv(csv_path);
        csv.header({"rate", "rho_sim", "rho_model", "latency_sim",
                    "latency_model"});
        for (const auto &p : points) {
            csv.rowDoubles({p.rate, p.rho_sim, p.rho_model,
                            p.latency_sim, p.latency_model});
        }
    }

    if (!obs_opts.run_report.empty()) {
        obs::RunReport report("open_loop_network");
        report.setArgv(argc, argv);
        report.addConfig("cycles", static_cast<long long>(cycles));
        report.setCounters(
            obs::CounterRegistry::process().snapshot());
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_time)
                .count();
        report.setProfile(profiler.get(), wall);
        report.writeFile(obs_opts.run_report);
        LOCSIM_INFORM("wrote run manifest to ", obs_opts.run_report);
    }
    return 0;
}
