/**
 * @file
 * Figure 3: application message curves.
 *
 * Reproduces the paper's measured relationship between average
 * inter-message injection time t_m and average message latency T_m
 * for the Section 3 application under one, two, and four hardware
 * contexts, across the nine thread-to-processor mappings. The paper's
 * claims: the relation is linear (Equation 9) and the slope roughly
 * doubles with each doubling of the context count (s = p*g/c),
 * falling slightly short at higher context counts.
 */

#include <cstdio>
#include <iostream>

#include "bench/common.hh"
#include "util/csv.hh"
#include "util/math.hh"
#include "util/table.hh"

using namespace locsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseHarnessOptions(
        argc, argv, "fig3_message_curves",
        "Figure 3: measured application message curves (t_m vs T_m)");

    std::printf("=== Figure 3: application message curves ===\n");
    std::printf("64-node radix-8 2-D torus, synthetic nearest-"
                "neighbour application\n\n");

    const auto points =
        bench::runValidationSims({1, 2, 4}, options);

    util::TextTable table({"contexts", "mapping", "d", "T_m (net cyc)",
                           "t_m (net cyc)"});
    for (const auto &p : points) {
        table.newRow()
            .cell(static_cast<long long>(p.contexts))
            .cell(p.mapping)
            .cell(p.distance, 2)
            .cell(p.m.message_latency, 1)
            .cell(p.m.inter_message_time, 1);
    }
    table.print(std::cout);

    std::printf("\nLeast-squares fits t_m = T_m/s + const "
                "(Equation 9):\n");
    util::TextTable fits({"contexts", "fitted s", "drift-adj s",
                          "expected p*g/c", "ratio vs 1 ctx", "R^2"});
    double s1 = 0.0;
    for (int contexts : {1, 2, 4}) {
        std::vector<double> xs, ys;
        double g = 0.0, c = 0.0, s_implied = 0.0;
        int n = 0;
        for (const auto &p : points) {
            if (p.contexts != contexts)
                continue;
            xs.push_back(p.m.message_latency);
            ys.push_back(p.m.inter_message_time);
            g += p.m.messages_per_txn;
            c += p.m.critical_messages;
            // Per-run implied sensitivity, controlling for the run's
            // own intercept (the Equation 9 slope a drift-free
            // experiment would see).
            s_implied += machine::impliedSensitivity(p.m);
            ++n;
        }
        const util::LineFit fit = util::fitLine(xs, ys);
        const double s = 1.0 / fit.slope;
        if (contexts == 1)
            s1 = s;
        const double expected =
            contexts * (g / n) / (c / n);
        fits.newRow()
            .cell(static_cast<long long>(contexts))
            .cell(s, 2)
            .cell(s_implied / n, 2)
            .cell(expected, 2)
            .cell(s / s1, 2)
            .cell(fit.r2, 3);
    }
    fits.print(std::cout);
    std::printf(
        "\nPaper: slopes increase roughly in proportion to the "
        "context count, slightly\nless than expected at four "
        "contexts (s measured 3.26 at p = 2).\n"
        "Our raw cross-mapping fit is flattened by intercept drift "
        "(per-run T_r and T_f\nvary with the mapping's hit rate); "
        "the drift-adjusted column controls for each\nrun's own "
        "intercept. See EXPERIMENTS.md.\n");

    if (!options.csv_path.empty()) {
        util::CsvWriter csv(options.csv_path);
        csv.header({"contexts", "mapping", "distance", "T_m", "t_m"});
        for (const auto &p : points) {
            csv.row({std::to_string(p.contexts), p.mapping,
                     util::formatDouble(p.distance, 3),
                     util::formatDouble(p.m.message_latency, 3),
                     util::formatDouble(p.m.inter_message_time, 3)});
        }
    }
    bench::maybeReportCacheStats(options);
    bench::maybeWriteRunReport(options, points);
    return 0;
}
