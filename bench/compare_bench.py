#!/usr/bin/env python3
"""Compare micro_perf --json outputs against a committed baseline.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [CURRENT2.json ...]
        [--threshold PCT] [--strict]

When several CURRENT files are given (repeated runs), the median
ns_per_op / allocs_per_op per benchmark is compared, which filters the
run-to-run noise of a loaded CI box. A benchmark regresses when its
median is more than --threshold percent (default 10) above the
baseline. Allocation counts are near-deterministic, so any increase
beyond the threshold is also flagged.

Exit status: 0 when nothing regressed, or always 0 without --strict
(report-only mode for informational CI steps); 1 with --strict when at
least one benchmark regressed; 2 on malformed input.
"""

import argparse
import json
import statistics
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
        return {b["name"]: b for b in doc["benchmarks"]}
    except (OSError, ValueError, KeyError) as e:
        print(f"compare_bench: cannot read {path}: {e}",
              file=sys.stderr)
        sys.exit(2)


def median_metric(runs, name, key):
    values = [r[name][key] for r in runs
              if name in r and key in r[name]]
    return statistics.median(values) if values else None


def main():
    parser = argparse.ArgumentParser(
        description="flag micro_perf regressions vs a baseline")
    parser.add_argument("baseline")
    parser.add_argument("current", nargs="+")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent "
                             "(default: 10)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 if any benchmark regressed")
    args = parser.parse_args()

    baseline = load(args.baseline)
    runs = [load(p) for p in args.current]

    regressions = []
    width = max((len(n) for n in baseline), default=4)
    print(f"{'benchmark':<{width}}  {'base ns/op':>12} "
          f"{'median ns/op':>12} {'delta':>8}")
    for name, base in sorted(baseline.items()):
        for key, label in (("ns_per_op", "ns/op"),
                           ("allocs_per_op", "allocs/op")):
            if key not in base:
                continue
            current = median_metric(runs, name, key)
            if current is None:
                if key == "ns_per_op":
                    print(f"{name:<{width}}  "
                          f"{base[key]:>12.4g} {'missing':>12}")
                continue
            delta = ((current - base[key]) / base[key] * 100.0
                     if base[key] > 0 else 0.0)
            if key == "ns_per_op":
                print(f"{name:<{width}}  {base[key]:>12.4g} "
                      f"{current:>12.4g} {delta:>+7.1f}%")
            if delta > args.threshold:
                regressions.append((name, label, base[key],
                                    current, delta))

    new_names = set(runs[0]) - set(baseline) if runs else set()
    for name in sorted(new_names):
        print(f"{name:<{width}}  {'(new)':>12}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0f}%:")
        for name, label, base, cur, delta in regressions:
            print(f"  {name} {label}: {base:.4g} -> {cur:.4g} "
                  f"({delta:+.1f}%)")
        if args.strict:
            sys.exit(1)
    else:
        print("\nno regressions beyond "
              f"{args.threshold:.0f}% threshold")


if __name__ == "__main__":
    main()
