#!/usr/bin/env python3
"""Compare micro_perf --json outputs against a committed baseline.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [CURRENT2.json ...]
        [--threshold PCT] [--strict] [--assume-cores N]
    compare_bench.py --self-test

When several CURRENT files are given (repeated runs), the median
ns_per_op / allocs_per_op per benchmark is compared, which filters the
run-to-run noise of a loaded CI box. A benchmark regresses when its
median is more than --threshold percent (default 10) above the
baseline. Allocation counts are near-deterministic, so they are held
to a stricter contract: any increase beyond the threshold regresses,
and a benchmark whose baseline is allocation-free (allocs_per_op == 0)
regresses on ANY nonzero value — zero-allocation steady state is a
property, not a quantity, so there is no tolerance band around it.

The large-radix benchmarks additionally report bytes_per_node (the
machine's deterministic explicit memory accounting, the same figure
run manifests publish as mem.bytes_per_node). When the baseline entry
records it, it is gated by the same percentage threshold — a change
that bloats per-node resident state fails even if it is not slower.
peak_rss_mb is never gated: it is a cumulative process high-water
mark and depends on benchmark ordering and the host allocator.

Baseline entries may carry "multicore_only": true (the sharded
BM_FullMachineCycles variants). Those measure parallel speedup, which
does not exist on a single-core host: there the shard barriers only
add cost and the numbers swing with scheduler behavior. Such entries
are reported but excluded from regression flagging when the host has
fewer than 2 usable cores (see docs/PERFORMANCE.md; --assume-cores
overrides detection, mainly for the self-test).

Baseline entries may also carry an "aggregate_speedup" gate (the
batched BM_BatchedSimCycles family):

    "aggregate_speedup": {"vs": "BM_BatchedSimCycles/1",
                          "lanes": 8, "min": 3.0}

The entry's iteration advances `lanes` simulations at once, so its
aggregate speedup over the solo benchmark named by "vs" is
lanes * median_ns(vs) / median_ns(entry), computed from the CURRENT
runs (both sides from the same host and load, so the ratio is robust
where absolute ns/op is not). A speedup below "min" regresses —
unless the spec says "status": "documented-miss", which reports the
shortfall without gating it (the honest-miss escape, mirroring how
docs/PERFORMANCE.md records targets that measurement did not bear
out; see its Batched execution section).

With --explain BASE_MANIFEST CURRENT_MANIFEST (two --run-report JSON
files, e.g. from `micro_perf --run-report`), a fired gate is followed
by a host-time phase attribution: both manifests' profile.phases
sections are normalized to shares of profiled time and the phases
whose share grew the most are called out — "router_scan went from 40%
to 55%" localizes a regression to the router scan before anyone opens
a profiler. Manifests with profiling disabled are reported as such
and skipped. Two shift patterns get named diagnoses: checkpoint-phase
growth is attributed to prefix-cache overhead, and a run whose
router_kernel share collapsed while router_scan grew is called out as
"SIMD fallback engaged" — the scalar tick path records no
router_kernel phase, so that signature means the build or host
stopped selecting the lane-vector kernels (check the LOCSIM_SIMD
CMake option, the LOCSIM_SIMD environment variable, and the host
CPU's vector support).

Exit status: 0 when nothing regressed, or always 0 without --strict
(report-only mode for informational CI steps); 1 with --strict when at
least one benchmark regressed; 2 on malformed input. --self-test runs
the comparison logic against the fixture pair in bench/fixtures/ and
exits 0/1.
"""

import argparse
import json
import os
import statistics
import sys

METRICS = (("ns_per_op", "ns/op"), ("allocs_per_op", "allocs/op"),
           ("bytes_per_node", "bytes/node"))


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
        return {b["name"]: b for b in doc["benchmarks"]}
    except (OSError, ValueError, KeyError) as e:
        print(f"compare_bench: cannot read {path}: {e}",
              file=sys.stderr)
        sys.exit(2)


def median_metric(runs, name, key):
    values = [r[name][key] for r in runs
              if name in r and key in r[name]]
    return statistics.median(values) if values else None


def compare(baseline, runs, threshold, cores):
    """Return (lines, regressions, skipped).

    lines: printable report rows. regressions: (name, label, base,
    current, delta) tuples. skipped: names excluded as multicore-only
    on a single-core host.
    """
    lines = []
    regressions = []
    skipped = []
    width = max((len(n) for n in baseline), default=4)
    lines.append(f"{'benchmark':<{width}}  {'base ns/op':>12} "
                 f"{'median ns/op':>12} {'delta':>8}")
    for name, base in sorted(baseline.items()):
        gate = True
        note = ""
        if base.get("multicore_only") and cores < 2:
            gate = False
            note = "  (multi-core only; not gated)"
            skipped.append(name)
        for key, label in METRICS:
            if key not in base:
                continue
            current = median_metric(runs, name, key)
            if current is None:
                if key == "ns_per_op":
                    lines.append(f"{name:<{width}}  "
                                 f"{base[key]:>12.4g} {'missing':>12}")
                continue
            delta = ((current - base[key]) / base[key] * 100.0
                     if base[key] > 0 else 0.0)
            if key == "ns_per_op":
                lines.append(f"{name:<{width}}  {base[key]:>12.4g} "
                             f"{current:>12.4g} {delta:>+7.1f}%{note}")
            if not gate:
                continue
            if delta > threshold:
                regressions.append((name, label, base[key],
                                    current, delta))
            elif (key == "allocs_per_op" and base[key] == 0
                  and current > 0):
                # Nonzero-from-zero: the steady state started
                # allocating. Percentage math cannot see this (the
                # base is 0), so it is flagged unconditionally.
                regressions.append((name, label, base[key],
                                    current, float("inf")))
        spec = base.get("aggregate_speedup")
        if spec:
            entry_ns = median_metric(runs, name, "ns_per_op")
            solo_ns = median_metric(runs, spec["vs"], "ns_per_op")
            if entry_ns and solo_ns:
                speedup = spec["lanes"] * solo_ns / entry_ns
                documented = spec.get("status") == "documented-miss"
                met = speedup >= spec["min"]
                verdict = ("ok" if met
                           else "documented miss; not gated"
                           if documented else "BELOW TARGET")
                lines.append(
                    f"{name:<{width}}  aggregate x{speedup:.2f} "
                    f"vs {spec['vs']} (target >= "
                    f"{spec['min']:g}x; {verdict})")
                if gate and not met and not documented:
                    shortfall = ((speedup - spec["min"])
                                 / spec["min"] * 100.0)
                    regressions.append(
                        (name, "aggregate speedup", spec["min"],
                         speedup, shortfall))
            else:
                lines.append(f"{name:<{width}}  aggregate speedup "
                             f"vs {spec['vs']}: missing")

    new_names = set(runs[0]) - set(baseline) if runs else set()
    for name in sorted(new_names):
        lines.append(f"{name:<{width}}  {'(new)':>12}")
    return lines, regressions, skipped


def load_manifest_phases(path):
    """Read profile.phases from a --run-report manifest.

    Returns {phase_name: ns} or None when the manifest has profiling
    disabled (still exit 2 on unreadable/malformed files, matching
    load()).
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
        profile = doc["profile"]
    except (OSError, ValueError, KeyError) as e:
        print(f"compare_bench: cannot read manifest {path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    if not profile.get("enabled") or "phases" not in profile:
        return None
    return {name: entry["ns"]
            for name, entry in profile["phases"].items()}


def explain(base_phases, cur_phases):
    """Attribute a regression to host phases.

    Returns printable lines: per-phase share-of-profiled-time before
    and after, sorted by share growth, with the largest shift called
    out. Shares (not raw ns) so the comparison survives differing
    iteration counts and host speeds.
    """
    base_total = sum(base_phases.values()) or 1
    cur_total = sum(cur_phases.values()) or 1
    deltas = []
    for name in sorted(set(base_phases) | set(cur_phases)):
        b = base_phases.get(name, 0) / base_total * 100.0
        c = cur_phases.get(name, 0) / cur_total * 100.0
        deltas.append((c - b, name, b, c))
    deltas.sort(key=lambda d: -d[0])
    lines = ["phase attribution (share of profiled host time):"]
    for d, name, b, c in deltas:
        lines.append(f"  {name:<18} {b:6.1f}% -> {c:6.1f}%  "
                     f"({d:+.1f} pts)")
    top = deltas[0]
    if top[0] > 0.5:
        lines.append(f"largest shift: {top[1]} (+{top[0]:.1f} points "
                     f"of profiled time) — look there first")
        checkpoint_growth = sum(
            d for d, name, _, _ in deltas
            if d > 0 and name in ("checkpoint_save",
                                  "checkpoint_restore"))
        if checkpoint_growth > 0.5:
            lines.append(
                "checkpoint phases grew "
                f"(+{checkpoint_growth:.1f} points): the regression "
                "is prefix-cache overhead, not simulation — compare "
                "BM_CheckpointRoundtrip, check image sizes and "
                "--prefix-rung-stride, or rerun with "
                "--no-prefix-cache to confirm")
        kernel_delta = next(
            (d for d, name, _, _ in deltas
             if name == "router_kernel"), 0.0)
        scan_delta = next(
            (d for d, name, _, _ in deltas
             if name == "router_scan"), 0.0)
        if kernel_delta < -0.5 and scan_delta > 0.5:
            lines.append(
                "router_kernel share collapsed "
                f"({kernel_delta:+.1f} points) while router_scan "
                f"grew (+{scan_delta:.1f} points): SIMD fallback "
                "engaged — the scalar tick path records no "
                "router_kernel phase. Check the LOCSIM_SIMD CMake "
                "option, the LOCSIM_SIMD environment variable, and "
                "the host CPU's vector support before hunting "
                "elsewhere")
    else:
        lines.append("no phase's share moved meaningfully; the "
                     "regression is spread evenly (or outside the "
                     "instrumented phases)")
    return lines


def report(lines, regressions, threshold):
    for line in lines:
        print(line)
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{threshold:.0f}%:")
        for name, label, base, cur, delta in regressions:
            kind = ("now allocates" if delta == float("inf")
                    else f"{delta:+.1f}%")
            print(f"  {name} {label}: {base:.4g} -> {cur:.4g} "
                  f"({kind})")
    else:
        print("\nno regressions beyond "
              f"{threshold:.0f}% threshold")


def self_test():
    """Exercise compare() on the committed fixture pair."""
    here = os.path.dirname(os.path.abspath(__file__))
    base = load(os.path.join(here, "fixtures", "compare_base.json"))
    cur = load(os.path.join(here, "fixtures", "compare_current.json"))

    failures = []

    def expect(cond, what):
        if not cond:
            failures.append(what)

    # Single-core host: multicore-only entries are not gated.
    _, regs, skipped = compare(base, [cur], 10.0, cores=1)
    flagged = {(n, l) for n, l, *_ in regs}
    expect(("BM_SlowPath", "ns/op") in flagged,
           "ns/op regression beyond threshold not flagged")
    expect(("BM_ZeroAlloc", "allocs/op") in flagged,
           "nonzero-from-zero allocs_per_op not flagged")
    expect(("BM_WithinNoise", "ns/op") not in flagged,
           "within-threshold delta wrongly flagged")
    # Footprint gate: bytes_per_node grew ~49%, well past threshold;
    # the 18x peak_rss_mb jump must NOT fire (never gated).
    expect(("BM_Footprint", "bytes/node") in flagged,
           "bytes_per_node regression beyond threshold not flagged")
    expect(("BM_Footprint", "ns/op") not in flagged,
           "within-threshold footprint ns/op wrongly flagged")
    expect(("BM_ShardedOnly", "ns/op") not in flagged,
           "multicore-only entry gated on a single-core host")
    expect(skipped == ["BM_ShardedOnly"],
           f"unexpected skip list: {skipped}")
    # Aggregate-speedup gates: 8 * 1000/2000 = x4.0 meets the 3x
    # target, 4 * 1000/2000 = x2.0 misses it (gated unless the spec
    # documents the miss).
    expect(("BM_BatchMet", "aggregate speedup") not in flagged,
           "met aggregate-speedup target wrongly flagged")
    expect(("BM_BatchMissed", "aggregate speedup") in flagged,
           "missed aggregate-speedup target not flagged")
    expect(("BM_BatchDocumented", "aggregate speedup") not in flagged,
           "documented-miss aggregate-speedup spec wrongly gated")
    expect(len(flagged) == 4, f"unexpected regressions: {flagged}")

    # Multi-core host: the sharded entry is gated like any other.
    _, regs, skipped = compare(base, [cur], 10.0, cores=8)
    flagged = {(n, l) for n, l, *_ in regs}
    expect(("BM_ShardedOnly", "ns/op") in flagged,
           "multicore-only entry not gated on a multi-core host")
    expect(skipped == [], f"unexpected skip list: {skipped}")

    # Median across repeated runs filters a single noisy file.
    noisy = {n: dict(b) for n, b in cur.items()}
    noisy["BM_WithinNoise"] = dict(noisy["BM_WithinNoise"],
                                   ns_per_op=1.0e9)
    _, regs, _ = compare(base, [cur, noisy, cur], 10.0, cores=1)
    expect(("BM_WithinNoise", "ns/op")
           not in {(n, l) for n, l, *_ in regs},
           "median did not filter a single noisy run")

    # --explain: the fixture manifests shift time into router_scan;
    # the attribution must rank it first and call it out.
    base_phases = load_manifest_phases(
        os.path.join(here, "fixtures", "manifest_base.json"))
    cur_phases = load_manifest_phases(
        os.path.join(here, "fixtures", "manifest_current.json"))
    expect(base_phases is not None and cur_phases is not None,
           "fixture manifests did not load")
    explain_lines = explain(base_phases, cur_phases)
    expect(any("largest shift: router_scan" in l
               for l in explain_lines),
           f"router_scan growth not attributed: {explain_lines}")
    # A disabled-profile manifest is detected, not crashed on.
    disabled = load_manifest_phases(
        os.path.join(here, "fixtures", "manifest_disabled.json"))
    expect(disabled is None,
           "profiling-disabled manifest not reported as None")
    # Checkpoint-phase attribution: a run whose time shifted into
    # checkpoint_restore/checkpoint_save is ranked and called out as
    # prefix-cache overhead.
    ckpt_phases = load_manifest_phases(
        os.path.join(here, "fixtures", "manifest_checkpoint.json"))
    expect(ckpt_phases is not None,
           "checkpoint fixture manifest did not load")
    ckpt_lines = explain(base_phases, ckpt_phases)
    expect(any("largest shift: checkpoint_restore" in l
               for l in ckpt_lines),
           f"checkpoint_restore growth not attributed: {ckpt_lines}")
    expect(any("prefix-cache overhead" in l for l in ckpt_lines),
           f"checkpoint growth hint missing: {ckpt_lines}")
    base_lines = explain(base_phases, cur_phases)
    expect(not any("prefix-cache overhead" in l for l in base_lines),
           "checkpoint hint fired without checkpoint growth")
    # SIMD-fallback attribution: the fallback fixture has no
    # router_kernel phase (the scalar tick path never records one)
    # and its time reappears in router_scan — that signature must be
    # named, and must stay quiet when router_kernel's share merely
    # tracks the baseline (manifest_current) or shrinks without scan
    # growth (manifest_checkpoint).
    fallback_phases = load_manifest_phases(
        os.path.join(here, "fixtures", "manifest_simd_fallback.json"))
    expect(fallback_phases is not None,
           "SIMD-fallback fixture manifest did not load")
    fallback_lines = explain(base_phases, fallback_phases)
    expect(any("SIMD fallback engaged" in l for l in fallback_lines),
           f"SIMD fallback not attributed: {fallback_lines}")
    expect(any("LOCSIM_SIMD" in l for l in fallback_lines),
           f"SIMD fallback hint lacks the knob to check: "
           f"{fallback_lines}")
    expect(not any("SIMD fallback" in l for l in base_lines),
           "SIMD fallback hint fired on a steady router_kernel share")
    expect(not any("SIMD fallback" in l for l in ckpt_lines),
           "SIMD fallback hint fired without router_scan growth")

    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}")
        return 1
    print("self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="flag micro_perf regressions vs a baseline")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="*")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent "
                             "(default: 10)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 if any benchmark regressed")
    parser.add_argument("--assume-cores", type=int, default=None,
                        help="override detected core count for the "
                             "multicore-only gate")
    parser.add_argument("--explain", nargs=2,
                        metavar=("BASE_MANIFEST", "CURRENT_MANIFEST"),
                        help="on regression, attribute the shift to "
                             "host phases using two --run-report "
                             "manifests")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture-based self-test")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if args.baseline is None or not args.current:
        parser.error("baseline and at least one current file required")

    cores = (args.assume_cores if args.assume_cores is not None
             else os.cpu_count() or 1)
    baseline = load(args.baseline)
    runs = [load(p) for p in args.current]

    lines, regressions, skipped = compare(baseline, runs,
                                          args.threshold, cores)
    report(lines, regressions, args.threshold)
    if skipped:
        print(f"skipped (multi-core only, {cores} core(s) here): "
              + ", ".join(skipped))
    if regressions and args.explain:
        base_phases = load_manifest_phases(args.explain[0])
        cur_phases = load_manifest_phases(args.explain[1])
        print()
        if base_phases is None or cur_phases is None:
            print("cannot explain: a manifest has profiling disabled "
                  "(rerun with --run-report and --profile)")
        else:
            for line in explain(base_phases, cur_phases):
                print(line)
    if regressions and args.strict:
        sys.exit(1)


if __name__ == "__main__":
    main()
