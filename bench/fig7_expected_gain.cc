/**
 * @file
 * Figure 7: expected gain from exploiting physical locality (ideal
 * versus random thread-to-processor mappings) as machine size scales
 * from ten to one million processors, for one, two, and four
 * hardware contexts.
 *
 * Paper claims: each curve starts at unity gain for ten processors
 * and reaches about two around 1,000 processors before entering the
 * communication-bound region; gains at one million processors are in
 * the tens (the paper quotes 40-55; see EXPERIMENTS.md for the
 * reproduction band at two and four contexts).
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/common.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace locsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseHarnessOptions(
        argc, argv, "fig7_expected_gain",
        "Figure 7: expected gain vs machine size (model)");

    std::printf("=== Figure 7: expected gain from exploiting "
                "physical locality ===\n");
    std::printf("gain = r_t(ideal mapping) / r_t(random mapping), "
                "2-D torus\n\n");

    std::vector<double> sizes;
    for (double n = 10.0; n <= 1.05e6; n *= std::sqrt(10.0))
        sizes.push_back(n);

    util::TextTable table({"processors", "d(random)", "gain p=1",
                           "gain p=2", "gain p=4"});
    std::vector<std::vector<std::string>> csv_rows;
    for (double n : sizes) {
        std::vector<double> gains;
        double d_random = 0.0;
        for (double contexts : {1.0, 2.0, 4.0}) {
            model::StudyConfig config =
                model::alewifeStudy(contexts, n, false);
            const model::GainResult r =
                model::LocalityAnalysis(config).expectedGain();
            gains.push_back(r.gain);
            d_random = r.random_distance;
        }
        table.newRow()
            .cell(static_cast<long long>(n))
            .cell(d_random, 1)
            .cell(gains[0], 2)
            .cell(gains[1], 2)
            .cell(gains[2], 2);
        csv_rows.push_back({util::formatDouble(n, 0),
                            util::formatDouble(d_random, 3),
                            util::formatDouble(gains[0], 4),
                            util::formatDouble(gains[1], 4),
                            util::formatDouble(gains[2], 4)});
    }
    table.print(std::cout);

    std::printf("\nPaper anchors (one context / Table 1 base row): "
                "unity at 10 processors,\n~2 at 1,000 processors, "
                "~41 at one million processors.\n");

    if (!options.csv_path.empty()) {
        util::CsvWriter csv(options.csv_path);
        csv.header({"processors", "d_random", "gain_p1", "gain_p2",
                    "gain_p4"});
        for (const auto &row : csv_rows)
            csv.row(row);
    }
    bench::maybeWriteRunReport(options);
    return 0;
}
