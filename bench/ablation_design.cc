/**
 * @file
 * Ablation study for the design choices DESIGN.md calls out:
 *
 *  1. Router buffering and virtual channels — how close the real
 *     wormhole fabric gets to the network model's idealized-buffering
 *     assumption (we default to depth 8, "a moderate amount of
 *     buffering").
 *  2. The switch-in refinement of Equation 5 (charging T_s per
 *     transaction in exposed mode) — its effect on model-vs-sim
 *     agreement for multithreaded runs.
 *  3. The node-channel contention extension (Section 2.4) — its
 *     effect on validation accuracy.
 *  4. The Equation 4 issue floor — where it binds in the large-scale
 *     analyses the paper runs without it.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/common.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace locsim;

namespace {

struct Errors
{
    double rate_pct = 0.0;
    double latency_cycles = 0.0;
};

/** Mean |model - sim| errors over the far half of the mapping family. */
Errors
validationErrors(int contexts, int vcs, int depth, bool node_channels,
                 bool charge_switch, const bench::HarnessOptions &opt)
{
    net::TorusTopology topo(8, 2);
    const auto family = workload::experimentMappings(topo);
    Errors err;
    int n = 0;
    for (const auto &named : family) {
        machine::MachineConfig config;
        config.contexts = contexts;
        config.router.vcs = vcs;
        config.router.buffer_depth = depth;
        const auto m =
            bench::runCachedMeasurement(opt, config, named.mapping);

        model::ApplicationParams app;
        app.run_length = m.run_length / 2.0;
        app.contexts = contexts;
        app.switch_time =
            charge_switch && contexts > 1 ? m.switch_overhead / 2.0
                                          : 0.0;
        model::TransactionParams txn;
        txn.critical_messages = m.critical_messages;
        txn.messages_per_txn = m.messages_per_txn;
        txn.fixed_overhead = m.fitted_fixed_overhead / 2.0;
        const model::MachineParams mach =
            model::alewifeMachine(64, node_channels);
        model::NodeModel node(
            model::ApplicationModel(app, 2.0),
            model::TransactionModel(txn, 2.0));
        model::CombinedModel combined(
            node, model::TorusNetworkModel(mach.network), m.avg_hops);
        const model::Prediction p = combined.solve();

        err.rate_pct += std::fabs(p.injection_rate - m.message_rate) /
                        m.message_rate * 100.0;
        err.latency_cycles +=
            std::fabs(p.message_latency - m.message_latency);
        ++n;
    }
    err.rate_pct /= n;
    err.latency_cycles /= n;
    return err;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::HarnessOptions options = bench::parseHarnessOptions(
        argc, argv, "ablation_design",
        "ablations over router buffering, model refinements, and "
        "the issue floor");
    // Ablations multiply the simulation count; trim windows a bit.
    if (!options.quick)
        options.window = 12000;

    std::printf("=== Ablation 1: router buffering vs model agreement "
                "(p = 1) ===\n\n");
    {
        util::TextTable table({"vcs", "depth/vc",
                               "mean |rate err| %",
                               "mean |T_m err| cyc"});
        for (int vcs : {2, 4}) {
            for (int depth : {2, 4, 8}) {
                const Errors e = validationErrors(
                    1, vcs, depth, true, true, options);
                table.newRow()
                    .cell(static_cast<long long>(vcs))
                    .cell(static_cast<long long>(depth))
                    .cell(e.rate_pct, 1)
                    .cell(e.latency_cycles, 1);
            }
        }
        table.print(std::cout);
        std::printf("\nShallow buffers make the wormhole fabric "
                    "saturate well below rho = 1, which the\nnetwork "
                    "model (idealized buffering) cannot see; depth 8 "
                    "is the default.\n\n");
    }

    std::printf("=== Ablation 2: Equation 5 switch-in charge "
                "(p = 2) ===\n\n");
    {
        util::TextTable table({"variant", "mean |rate err| %",
                               "mean |T_m err| cyc"});
        const Errors with_switch =
            validationErrors(2, 2, 8, true, true, options);
        const Errors without =
            validationErrors(2, 2, 8, true, false, options);
        table.newRow()
            .cell("t_t = (T_t+T_r+T_s)/p (ours)")
            .cell(with_switch.rate_pct, 1)
            .cell(with_switch.latency_cycles, 1);
        table.newRow()
            .cell("t_t = (T_t+T_r)/p (paper Eq 5)")
            .cell(without.rate_pct, 1)
            .cell(without.latency_cycles, 1);
        table.print(std::cout);
        std::printf("\nBlock multithreading pays the 11-cycle switch "
                    "on every miss; charging it in\nthe curve "
                    "noticeably tightens multithreaded "
                    "predictions.\n\n");
    }

    std::printf("=== Ablation 3: node-channel contention extension "
                "(p = 1) ===\n\n");
    {
        util::TextTable table({"variant", "mean |rate err| %",
                               "mean |T_m err| cyc"});
        const Errors on =
            validationErrors(1, 2, 8, true, true, options);
        const Errors off =
            validationErrors(1, 2, 8, false, true, options);
        table.newRow()
            .cell("extension on (paper)")
            .cell(on.rate_pct, 1)
            .cell(on.latency_cycles, 1);
        table.newRow()
            .cell("extension off")
            .cell(off.rate_pct, 1)
            .cell(off.latency_cycles, 1);
        table.print(std::cout);
        std::printf("\n");
    }

    std::printf("=== Ablation 4: where the Equation 4 issue floor "
                "binds (model) ===\n\n");
    {
        util::TextTable table({"contexts", "N", "mapping",
                               "floor binds", "t_t floored",
                               "t_t unfloored"});
        for (double contexts : {2.0, 4.0}) {
            for (double n : {64.0, 1000.0, 1e6}) {
                for (model::Mapping mapping :
                     {model::Mapping::Ideal, model::Mapping::Random}) {
                    model::StudyConfig cfg =
                        model::alewifeStudy(contexts, n, false);
                    model::LocalityAnalysis with_floor(cfg);
                    cfg.enforce_issue_floor = false;
                    model::LocalityAnalysis without(cfg);
                    const auto a = with_floor.predict(mapping);
                    const auto b = without.predict(mapping);
                    table.newRow()
                        .cell(static_cast<long long>(contexts))
                        .cell(static_cast<long long>(n))
                        .cell(mapping == model::Mapping::Ideal
                                  ? "ideal"
                                  : "random")
                        .cell(a.issue_bound_hit ? "yes" : "no")
                        .cell(a.inter_txn_time, 1)
                        .cell(b.inter_txn_time, 1);
                }
            }
        }
        table.print(std::cout);
        std::printf("\nThe floor only matters for well-mapped "
                    "multithreaded configurations -- exactly\nthe "
                    "regime the paper's experiments never reached, "
                    "which is why it could drop\nEquation 4.\n");
    }
    bench::maybeReportCacheStats(options);
    bench::maybeWriteRunReport(options);
    return 0;
}
