/**
 * @file
 * Google-benchmark microbenchmarks for the library's hot paths: the
 * combined-model solvers, locality sweeps, the flit-level network
 * simulator, the coherence protocol, and the full machine. These
 * track the cost of the tools themselves (simulator cycles/second,
 * model solves/second), not paper results.
 *
 * `--json PATH` (or `--json=PATH`) additionally writes a compact
 * machine-readable summary — one entry per benchmark with its ns/op —
 * for CI trend tracking and the before/after tables in
 * docs/PERFORMANCE.md. All regular google-benchmark flags still work.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <sys/resource.h>
#include <unistd.h>

#include "util/alloc_count.hh"

#include "cache/key.hh"
#include "cache/prefix.hh"
#include "cache/store.hh"
#include "machine/machine.hh"
#include "model/alewife.hh"
#include "model/combined_model.hh"
#include "model/locality.hh"
#include "net/network.hh"
#include "net/traffic.hh"
#include "obs/build_info.hh"
#include "obs/counters.hh"
#include "obs/profiler.hh"
#include "obs/report.hh"
#include "sim/engine.hh"
#include "util/options.hh"
#include "util/random.hh"
#include "workload/mapping.hh"

using namespace locsim;

/*
 * Heap-allocation accounting: util/alloc_count.hh replaces the global
 * allocation operators with counting wrappers (one relaxed atomic
 * increment per allocation), so benchmarks can report allocs_per_op
 * alongside ns/op (the number the arena work in src/util/arena.hh
 * targets). The steady-state allocation test (tests/alloc_test.cc)
 * uses the same hooks.
 */
using locsim::util::heapAllocCount;

namespace {

/*
 * --profile / --run-report state (set in main before benchmarks run).
 * The network and batched-lane benchmarks attach a fresh profiler per
 * run when enabled, so the tables and manifest reflect the *last* run
 * of each family (the 16x16 network, the 8-lane batch) — the
 * configurations whose phase splits the docs discuss.
 */
bool g_profile_enabled = false;
std::unique_ptr<obs::Profiler> g_net_profiler;
std::unique_ptr<obs::Profiler> g_batch_profiler;
std::string g_net_profile_title;
std::string g_batch_profile_title;

/** Attach an allocs_per_op counter covering the timed loop. */
void
reportAllocs(benchmark::State &state, std::uint64_t before)
{
    const std::uint64_t after = heapAllocCount();
    state.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(after - before) /
        static_cast<double>(state.iterations()));
}

/** Process peak RSS in bytes (Linux ru_maxrss is KiB). */
std::uint64_t
peakRssBytes()
{
    struct rusage usage
    {
    };
    ::getrusage(RUSAGE_SELF, &usage);
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
}

/**
 * Attach the large-radix footprint counters: bytes_per_node is the
 * machine's deterministic explicit accounting (the same number the
 * run manifests publish as mem.bytes_per_node), so the baseline can
 * gate it; peak_rss_mb is the process high-water mark, informational
 * only — it is cumulative across every benchmark that ran before this
 * one and varies with the host allocator.
 */
void
reportFootprint(benchmark::State &state,
                const machine::Machine &machine, std::uint32_t nodes)
{
    state.counters["bytes_per_node"] = benchmark::Counter(
        static_cast<double>(machine.memoryBytes() / nodes));
    state.counters["peak_rss_mb"] = benchmark::Counter(
        static_cast<double>(peakRssBytes()) / (1024.0 * 1024.0));
}

void
BM_CombinedModelBisection(benchmark::State &state)
{
    const model::StudyConfig config = model::alewifeStudy(
        2, static_cast<double>(state.range(0)), true);
    model::LocalityAnalysis analysis(config);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            analysis.predict(model::Mapping::Random));
    }
}
BENCHMARK(BM_CombinedModelBisection)->Arg(1000)->Arg(1000000);

void
BM_CombinedModelQuadratic(benchmark::State &state)
{
    model::StudyConfig config = model::alewifeStudy(2, 4096, false);
    model::LocalityAnalysis analysis(config);
    model::CombinedModel combined(
        analysis.nodeModel(), analysis.networkModel(),
        analysis.mappingDistance(model::Mapping::Random), false);
    for (auto _ : state)
        benchmark::DoNotOptimize(combined.solveQuadratic());
}
BENCHMARK(BM_CombinedModelQuadratic);

void
BM_ExpectedGainSweep(benchmark::State &state)
{
    const model::StudyConfig base = model::alewifeStudy(1, 64, false);
    const std::vector<double> sizes{10,   100,    1000,
                                    10000, 100000, 1000000};
    for (auto _ : state)
        benchmark::DoNotOptimize(sweepExpectedGain(base, sizes));
}
BENCHMARK(BM_ExpectedGainSweep);

void
BM_NetworkSimCycles(benchmark::State &state, int radix)
{
    sim::Engine engine;
    net::NetworkConfig config;
    config.radix = radix;
    config.dims = 2;
    net::Network network(engine, config);
    engine.addClocked(&network, 1);
    if (g_profile_enabled) {
        g_net_profiler = std::make_unique<obs::Profiler>(1, 1);
        g_net_profile_title =
            "BM_NetworkSimCycles (radix " + std::to_string(radix) +
            ")";
        engine.setProfiler(&g_net_profiler->slot(0, 0));
        network.setProfiler(g_net_profiler.get(), 0);
    }
    net::TrafficConfig traffic;
    traffic.injection_rate = 0.02;
    net::TrafficGenerator gen(network, traffic);
    engine.addClocked(&gen, 1);
    // Reach allocation steady state before counting: pools, rings and
    // link arenas grow to a high-water mark, after which the hot path
    // recycles storage and allocs_per_op reads zero (the CI alloc
    // smoke step enforces it for the uncongested 8x8 configuration).
    // Warm until a full window passes without touching the allocator
    // (bounded; the saturated 16x16 configuration never goes quiet).
    for (int i = 0; i < 50; ++i) {
        const std::uint64_t before = heapAllocCount();
        engine.run(2000);
        if (heapAllocCount() == before)
            break;
    }
    const std::uint64_t allocs = heapAllocCount();
    for (auto _ : state)
        engine.run(100);
    reportAllocs(state, allocs);
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK_CAPTURE(BM_NetworkSimCycles, 8x8, 8)
    ->Name("BM_NetworkSimCycles")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_NetworkSimCycles, 16x16, 16)
    ->Name("BM_NetworkSimCycles/16x16")
    ->Unit(benchmark::kMicrosecond);

/**
 * Aggregate throughput of K independent 8x8 network simulations
 * advanced as lanes of one batch: one engine and one pair of
 * lane-striped link stores carry all K networks, so the clocked scan
 * and dirty-word rotation run once over the whole batch. Lanes differ
 * only by traffic seed. K = 1 is the solo baseline; items processed
 * count aggregate lane-cycles, so the K = 8 entry's items/second
 * divided by K = 1's is the batching speedup compare_bench.py gates
 * (as aggregate_speedup on the BENCH_seed.json baseline). The 16x16
 * entry (4 lanes of radix 16) sizes the batch past L2 so the
 * lane-vector kernels are measured under realistic cache pressure;
 * its aggregate baseline is BM_NetworkSimCycles/16x16.
 */
void
BM_BatchedSimCycles(benchmark::State &state, int lanes, int radix)
{
    sim::Engine engine;
    net::NetworkConfig config;
    config.radix = radix;
    config.dims = 2;
    net::LinkStores stores(config.router.buffer_depth + 2,
                           config.router.vcs, /*shards=*/1, lanes);
    const std::vector<sim::Engine *> engines{&engine};
    stores.registerRotators(engines);
    if (g_profile_enabled) {
        g_batch_profiler = std::make_unique<obs::Profiler>(1, lanes);
        g_batch_profile_title =
            "BM_BatchedSimCycles (" + std::to_string(lanes) +
            " lanes)";
        engine.setProfiler(&g_batch_profiler->slot(0, 0));
    }
    std::vector<std::unique_ptr<net::Network>> networks;
    std::vector<std::unique_ptr<net::TrafficGenerator>> generators;
    for (int l = 0; l < lanes; ++l) {
        stores.beginLane(l);
        networks.push_back(
            std::make_unique<net::Network>(engine, config, &stores));
        if (g_profile_enabled)
            networks.back()->setProfiler(g_batch_profiler.get(), l);
        engine.addClocked(networks.back().get(), 1);
        net::TrafficConfig traffic;
        traffic.injection_rate = 0.02;
        traffic.seed = static_cast<std::uint64_t>(l) + 1;
        generators.push_back(std::make_unique<net::TrafficGenerator>(
            *networks.back(), traffic));
        engine.addClocked(generators.back().get(), 1);
    }
    // Warm to allocation steady state (see BM_NetworkSimCycles).
    for (int i = 0; i < 50; ++i) {
        const std::uint64_t before = heapAllocCount();
        engine.run(2000);
        if (heapAllocCount() == before)
            break;
    }
    const std::uint64_t allocs = heapAllocCount();
    for (auto _ : state)
        engine.run(100);
    reportAllocs(state, allocs);
    state.SetItemsProcessed(state.iterations() * 100 * lanes);
}
BENCHMARK_CAPTURE(BM_BatchedSimCycles, 1, 1, 8)
    ->Name("BM_BatchedSimCycles/1")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_BatchedSimCycles, 2, 2, 8)
    ->Name("BM_BatchedSimCycles/2")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_BatchedSimCycles, 4, 4, 8)
    ->Name("BM_BatchedSimCycles/4")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_BatchedSimCycles, 8, 8, 8)
    ->Name("BM_BatchedSimCycles/8")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_BatchedSimCycles, 16x16, 4, 16)
    ->Name("BM_BatchedSimCycles/16x16")
    ->Unit(benchmark::kMicrosecond);

void
BM_TorusRouting(benchmark::State &state)
{
    net::TorusTopology topo(16, 3);
    util::Rng rng(1);
    for (auto _ : state) {
        const auto a = static_cast<sim::NodeId>(
            rng.nextBounded(topo.nodeCount()));
        auto b = static_cast<sim::NodeId>(
            rng.nextBounded(topo.nodeCount() - 1));
        if (b >= a)
            ++b;
        sim::NodeId at = a;
        while (at != b) {
            const net::HopStep step = topo.nextHop(at, b);
            at = topo.neighbor(at, step.dim, step.dir);
        }
        benchmark::DoNotOptimize(at);
    }
}
BENCHMARK(BM_TorusRouting);

void
BM_FullMachineCycles(benchmark::State &state, int radix, int contexts,
                     int shards)
{
    machine::MachineConfig config;
    config.radix = radix;
    config.contexts = contexts;
    config.shards = shards;
    const std::uint32_t nodes =
        static_cast<std::uint32_t>(radix) *
        static_cast<std::uint32_t>(radix);
    machine::Machine machine(config,
                             workload::Mapping::random(nodes, 9));
    machine.advance(1000); // warm the caches/directories
    // Then warm to allocation steady state (see BM_NetworkSimCycles).
    for (int i = 0; i < 50; ++i) {
        const std::uint64_t before = heapAllocCount();
        machine.advance(1000);
        if (heapAllocCount() == before)
            break;
    }
    const std::uint64_t allocs = heapAllocCount();
    for (auto _ : state)
        machine.advance(100); // 200 network cycles
    reportAllocs(state, allocs);
    state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK_CAPTURE(BM_FullMachineCycles, 1, 8, 1, 1)
    ->Name("BM_FullMachineCycles/1")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_FullMachineCycles, 4, 8, 4, 1)
    ->Name("BM_FullMachineCycles/4")
    ->Unit(benchmark::kMicrosecond);
// The sharded-execution headline: one 16x16 machine, sequentially and
// split over 2/4 lockstep shards. Results are bit-identical; only the
// wall clock moves (and only when cores are available — see
// docs/SHARDING.md for when K > 1 loses).
BENCHMARK_CAPTURE(BM_FullMachineCycles, 16x16, 16, 1, 1)
    ->Name("BM_FullMachineCycles/16x16")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_FullMachineCycles, 16x16s2, 16, 1, 2)
    ->Name("BM_FullMachineCycles/16x16/shards:2")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_FullMachineCycles, 16x16s4, 16, 1, 4)
    ->Name("BM_FullMachineCycles/16x16/shards:4")
    ->Unit(benchmark::kMicrosecond);

/**
 * Build-and-tear-down cost of a full 64-node machine: the allocation
 * count here is what the network arena (routers, flit rings, credit
 * pipes from chained slabs) is meant to shrink.
 */
void
BM_MachineConstruction(benchmark::State &state)
{
    machine::MachineConfig config;
    const workload::Mapping mapping = workload::Mapping::random(64, 9);
    const std::uint64_t allocs = heapAllocCount();
    for (auto _ : state) {
        machine::Machine machine(config, mapping);
        benchmark::DoNotOptimize(&machine);
    }
    reportAllocs(state, allocs);
}
BENCHMARK(BM_MachineConstruction)->Unit(benchmark::kMicrosecond);

/*
 * The large-radix scaling tier: 48x48 (2304 nodes) and 64x64 (4096
 * nodes) machines, far past the paper's 64-node validation platform.
 * These exist to keep the compact per-node representation honest —
 * bytes_per_node is gated by compare_bench.py against BENCH_seed.json
 * alongside ns/op, so a representation change that bloats resident
 * state fails CI even if it is not slower.
 */

/**
 * Full construct-and-tear-down at large radix. Above the parallel-
 * construction threshold (64x64) this also times the threaded build
 * path that sequential BM_MachineConstruction never exercises.
 */
void
BM_LargeRadixConstruction(benchmark::State &state, int radix)
{
    machine::MachineConfig config;
    config.radix = radix;
    const auto nodes = static_cast<std::uint32_t>(radix) *
                       static_cast<std::uint32_t>(radix);
    const workload::Mapping mapping =
        workload::Mapping::random(nodes, 9);
    const std::uint64_t allocs = heapAllocCount();
    for (auto _ : state) {
        machine::Machine machine(config, mapping);
        benchmark::DoNotOptimize(&machine);
    }
    reportAllocs(state, allocs);
    // Footprint of a cold machine (pre-traffic): the number a fresh
    // construction commits to before any line is touched.
    machine::Machine machine(config, mapping);
    reportFootprint(state, machine, nodes);
}
BENCHMARK_CAPTURE(BM_LargeRadixConstruction, 48x48, 48)
    ->Name("BM_LargeRadixConstruction/48x48")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_LargeRadixConstruction, 64x64, 64)
    ->Name("BM_LargeRadixConstruction/64x64")
    ->Unit(benchmark::kMillisecond);

/**
 * Simulated cycles per second at large radix, after a short warmup.
 * The warmup is deliberately brief (full allocation steady state at
 * 4096 nodes would dominate the whole micro_perf run), so the
 * reported allocs_per_op depends on how many iterations the harness
 * chose — the baseline gates ns/op and bytes_per_node only. The
 * bytes_per_node here is the *warm* footprint: caches and directories
 * have absorbed real traffic.
 */
void
BM_LargeRadixSimCycles(benchmark::State &state, int radix)
{
    machine::MachineConfig config;
    config.radix = radix;
    const auto nodes = static_cast<std::uint32_t>(radix) *
                       static_cast<std::uint32_t>(radix);
    machine::Machine machine(config,
                             workload::Mapping::random(nodes, 9));
    machine.advance(500); // brief warm: touch caches/directories
    for (auto _ : state)
        machine.advance(50); // 100 network cycles
    state.SetItemsProcessed(state.iterations() * 100);
    reportFootprint(state, machine, nodes);
}
// Iteration counts are pinned (not harness-chosen): the machine's
// warm footprint depends on how many cycles ran before the counter
// is read, so a floating count would make the gated bytes_per_node
// wobble with host speed.
BENCHMARK_CAPTURE(BM_LargeRadixSimCycles, 48x48, 48)
    ->Name("BM_LargeRadixSimCycles/48x48")
    ->Iterations(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_LargeRadixSimCycles, 64x64, 64)
    ->Name("BM_LargeRadixSimCycles/64x64")
    ->Iterations(4)
    ->Unit(benchmark::kMillisecond);

/**
 * Same machine with message-level tracing enabled: measures the cost
 * of recording (the null-sink cost when tracing is off is covered by
 * BM_FullMachineCycles). The event cap is raised so typical runs
 * measure the record path, not the cheaper post-cap drop path, while
 * still bounding memory if benchmark iterations run long.
 */
/**
 * Cost of one LSCK checkpoint round trip: serialize a warmed machine,
 * construct a fresh twin, and restore the image into it. This is the
 * fixed overhead the prefix cache pays per restored sweep point, so
 * the "is restore cheaper than re-simulating the warmup" break-even
 * the docs quote comes from these numbers. The fresh-machine
 * construction is included deliberately — restoreCheckpoint requires
 * one, so it is part of the real price of a restore.
 */
void
BM_CheckpointRoundtrip(benchmark::State &state, int radix)
{
    machine::MachineConfig config;
    config.radix = radix;
    const auto nodes = static_cast<std::uint32_t>(radix) *
                       static_cast<std::uint32_t>(radix);
    const workload::Mapping mapping =
        workload::Mapping::random(nodes, 9);
    machine::Machine machine(config, mapping);
    machine.advance(2000); // a realistic mid-warmup state
    state.counters["image_bytes"] = benchmark::Counter(
        static_cast<double>(machine.saveCheckpoint().size()));
    const std::uint64_t allocs = heapAllocCount();
    for (auto _ : state) {
        const std::vector<std::uint8_t> image =
            machine.saveCheckpoint();
        machine::Machine restored(config, mapping);
        restored.restoreCheckpoint(image);
        benchmark::DoNotOptimize(&restored);
    }
    reportAllocs(state, allocs);
}
BENCHMARK_CAPTURE(BM_CheckpointRoundtrip, 8x8, 8)
    ->Name("BM_CheckpointRoundtrip/8x8")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_CheckpointRoundtrip, 16x16, 16)
    ->Name("BM_CheckpointRoundtrip/16x16")
    ->Unit(benchmark::kMicrosecond);

/**
 * A cold three-window sweep over one shared warmup, exactly as the
 * figure harnesses run it: each point goes through the result cache
 * (always missing — the cache directory is fresh per iteration), and
 * misses simulate either through the prefix planner (warmup runs
 * once, later windows restore) or from clock zero. The ratio
 * noprefix/prefix is the headline aggregate cold-sweep speedup
 * compare_bench.py gates against BENCH_seed.json.
 */
void
BM_PrefixSweep(benchmark::State &state, bool use_prefix)
{
    namespace fs = std::filesystem;
    machine::MachineConfig config; // the 64-node validation machine
    const workload::Mapping mapping =
        workload::Mapping::random(64, 9);
    constexpr std::uint64_t kWarmup = 8000;
    const std::uint64_t windows[] = {200, 400, 600, 800, 1000};
    std::uint64_t serial = 0;
    for (auto _ : state) {
        state.PauseTiming();
        const fs::path dir =
            fs::temp_directory_path() /
            ("locsim_prefix_sweep_" + std::to_string(::getpid()) +
             "_" + std::to_string(serial++));
        fs::remove_all(dir);
        state.ResumeTiming();
        {
            cache::SimCache store(dir.string());
            std::optional<cache::PrefixPlanner> planner;
            if (use_prefix)
                planner.emplace(store, cache::PrefixOptions{});
            for (const std::uint64_t window : windows) {
                const auto payload = store.getOrRun(
                    cache::simKey(config, mapping, kWarmup, window),
                    [&] {
                        machine::Measurement m;
                        if (planner.has_value()) {
                            const auto machine = planner->warmMachine(
                                config, mapping, kWarmup);
                            m = machine->measure(window);
                        } else {
                            machine::Machine machine(config, mapping);
                            m = machine.run(kWarmup, window);
                        }
                        util::Serializer s;
                        machine::saveMeasurement(s, m);
                        return s.takeBuffer();
                    });
                benchmark::DoNotOptimize(payload.data());
            }
        }
        state.PauseTiming();
        fs::remove_all(dir);
        state.ResumeTiming();
    }
    // One item per sweep point, so items/second compares directly
    // between the prefix and noprefix variants.
    state.SetItemsProcessed(state.iterations() * 5);
}
BENCHMARK_CAPTURE(BM_PrefixSweep, prefix, true)
    ->Name("BM_PrefixSweep/prefix")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PrefixSweep, noprefix, false)
    ->Name("BM_PrefixSweep/noprefix")
    ->Unit(benchmark::kMillisecond);

void
BM_FullMachineCyclesTraced(benchmark::State &state)
{
    machine::MachineConfig config;
    config.contexts = static_cast<int>(state.range(0));
    config.trace.enabled = true;
    config.trace.max_events = 1u << 24;
    machine::Machine machine(
        config, workload::Mapping::random(64, 9));
    machine.advance(1000); // warm the caches/directories
    for (auto _ : state)
        machine.advance(100); // 200 network cycles
    state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_FullMachineCyclesTraced)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void
BM_MappingDistance(benchmark::State &state)
{
    net::TorusTopology topo(8, 2);
    const workload::Mapping mapping = workload::Mapping::random(64, 3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mapping.averageNeighborDistance(topo));
    }
}
BENCHMARK(BM_MappingDistance);

/**
 * Console reporter that also records (name, ns/op, iterations) for
 * every per-iteration run it prints.
 */
class CollectingReporter : public benchmark::ConsoleReporter
{
  public:
    struct Entry
    {
        std::string name;
        double ns_per_op = 0.0;
        std::int64_t iterations = 0;
        double allocs_per_op = -1.0;  //!< <0 = not measured
        double bytes_per_node = -1.0; //!< <0 = not measured
        double peak_rss_mb = -1.0;    //!< <0 = not measured
    };

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.run_type != Run::RT_Iteration)
                continue; // skip mean/median/stddev aggregates
            Entry entry;
            entry.name = run.benchmark_name();
            entry.iterations =
                static_cast<std::int64_t>(run.iterations);
            if (run.iterations > 0) {
                entry.ns_per_op =
                    run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e9;
            }
            const auto it = run.counters.find("allocs_per_op");
            if (it != run.counters.end())
                entry.allocs_per_op = it->second.value;
            const auto bytes = run.counters.find("bytes_per_node");
            if (bytes != run.counters.end())
                entry.bytes_per_node = bytes->second.value;
            const auto rss = run.counters.find("peak_rss_mb");
            if (rss != run.counters.end())
                entry.peak_rss_mb = rss->second.value;
            entries.push_back(std::move(entry));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    std::vector<Entry> entries;
};

std::string
escapeJson(const std::string &in)
{
    std::string out;
    for (char c : in) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

bool
writeJson(const std::string &path,
          const std::vector<CollectingReporter::Entry> &entries)
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
        std::fprintf(stderr, "micro_perf: cannot write %s\n",
                     path.c_str());
        return false;
    }
    std::fprintf(file, "{\n  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto &e = entries[i];
        std::fprintf(file,
                     "    {\"name\": \"%s\", \"ns_per_op\": %.6g, "
                     "\"iterations\": %lld",
                     escapeJson(e.name).c_str(), e.ns_per_op,
                     static_cast<long long>(e.iterations));
        if (e.allocs_per_op >= 0.0)
            std::fprintf(file, ", \"allocs_per_op\": %.6g",
                         e.allocs_per_op);
        if (e.bytes_per_node >= 0.0)
            std::fprintf(file, ", \"bytes_per_node\": %.6g",
                         e.bytes_per_node);
        if (e.peak_rss_mb >= 0.0)
            std::fprintf(file, ", \"peak_rss_mb\": %.6g",
                         e.peak_rss_mb);
        std::fprintf(file, "}%s\n",
                     i + 1 < entries.size() ? "," : "");
    }
    std::fprintf(file, "  ]\n}\n");
    std::fclose(file);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel off our own flags (--json, --profile, --run-report,
    // --build-info) before google-benchmark sees argv.
    std::string json_path;
    std::string report_path;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
            continue;
        }
        if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
            continue;
        }
        if (arg == "--run-report" && i + 1 < argc) {
            report_path = argv[++i];
            continue;
        }
        if (arg.rfind("--run-report=", 0) == 0) {
            report_path = arg.substr(13);
            continue;
        }
        if (arg == "--profile") {
            g_profile_enabled = true;
            continue;
        }
        if (arg == "--build-info") {
            obs::printBuildInfo(std::cout);
            return 0;
        }
        args.push_back(argv[i]);
    }
    if (!report_path.empty()) {
        util::requireWritableParent(report_path, "--run-report");
        g_profile_enabled = true; // the manifest carries the profile
    }
    const auto start_time = std::chrono::steady_clock::now();
    int filtered_argc = static_cast<int>(args.size());
    benchmark::Initialize(&filtered_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                               args.data()))
        return 1;

    CollectingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    if (!json_path.empty() && !writeJson(json_path, reporter.entries))
        return 1;

    if (g_profile_enabled) {
        if (g_net_profiler != nullptr)
            obs::writeProfileTable(std::cout, *g_net_profiler,
                                   g_net_profile_title);
        if (g_batch_profiler != nullptr)
            obs::writeProfileTable(std::cout, *g_batch_profiler,
                                   g_batch_profile_title);
    }

    if (!report_path.empty()) {
        obs::RunReport report("micro_perf");
        report.setArgv(argc, argv);
        report.addConfig("json", json_path);
        report.addConfig("benchmarks",
                         static_cast<long long>(
                             reporter.entries.size()));
        auto &registry = obs::CounterRegistry::process();
        registry.set("host.heap_allocs", heapAllocCount());
        report.setCounters(registry.snapshot());
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_time)
                .count();
        // Prefer the batched grid (per-lane breakdown) when both ran.
        const obs::Profiler *profiler = g_batch_profiler != nullptr
                                            ? g_batch_profiler.get()
                                            : g_net_profiler.get();
        report.setProfile(profiler, wall);
        report.writeFile(report_path);
        std::fprintf(stderr, "micro_perf: wrote run manifest to %s\n",
                     report_path.c_str());
    }
    return 0;
}
