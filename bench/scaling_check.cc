/**
 * @file
 * Scaling check: does the combined model's *expected gain* prediction
 * track the simulator as machines grow beyond the paper's 64-node
 * validation platform?
 *
 * For each machine size (8x8 through 16x16 tori) the harness runs the
 * synthetic application under ideal (identity) and random mappings,
 * reports the measured gain r_t(ideal)/r_t(random), and compares it
 * with the model's prediction calibrated from the ideal run's
 * measured parameters. This extends the paper's Section 3 validation
 * (which stops at 64 nodes) toward the Section 4 extrapolation
 * regime.
 */

#include <cstdio>
#include <iostream>

#include "bench/common.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace locsim;

int
main(int argc, char **argv)
{
    bench::HarnessOptions options = bench::parseHarnessOptions(
        argc, argv, "scaling_check",
        "measured vs predicted locality gain as machines scale");
    if (!options.quick)
        options.window = 12000; // larger machines cost more per cycle

    std::printf("=== Locality gain, simulation vs model, vs machine "
                "size ===\n\n");

    util::TextTable table({"nodes", "d random", "gain sim",
                           "gain model", "r_t ideal", "r_t random"});
    std::vector<std::vector<std::string>> csv_rows;
    for (int radix : {8, 10, 12, 16}) {
        const auto nodes =
            static_cast<std::uint32_t>(radix * radix);
        auto run = [&](const workload::Mapping &mapping) {
            machine::MachineConfig config;
            config.radix = radix;
            return bench::runCachedMeasurement(options, config,
                                               mapping);
        };
        const auto ideal = run(workload::Mapping::identity(nodes));
        const auto random =
            run(workload::Mapping::random(nodes, 47));

        // Model prediction calibrated from the ideal run's measured
        // application parameters, evaluated at both distances.
        const model::Prediction p_ideal =
            machine::predictFromMeasurement(ideal, 1,
                                            ideal.avg_hops);
        const model::Prediction p_random =
            machine::predictFromMeasurement(ideal, 1,
                                            random.avg_hops);
        const double gain_sim = ideal.txn_rate / random.txn_rate;
        const double gain_model =
            p_ideal.txn_rate / p_random.txn_rate;

        table.newRow()
            .cell(static_cast<long long>(nodes))
            .cell(random.avg_hops, 2)
            .cell(gain_sim, 2)
            .cell(gain_model, 2)
            .cell(ideal.txn_rate, 5)
            .cell(random.txn_rate, 5);
        csv_rows.push_back(
            {std::to_string(nodes),
             util::formatDouble(random.avg_hops, 3),
             util::formatDouble(gain_sim, 4),
             util::formatDouble(gain_model, 4)});
    }
    table.print(std::cout);

    std::printf("\nThe model's gain prediction tracks the simulator "
                "as distance grows with machine\nsize -- the trend "
                "Figure 7 extrapolates to a million processors.\n");

    if (!options.csv_path.empty()) {
        util::CsvWriter csv(options.csv_path);
        csv.header({"nodes", "d_random", "gain_sim", "gain_model"});
        for (const auto &row : csv_rows)
            csv.row(row);
    }
    bench::maybeReportCacheStats(options);
    bench::maybeWriteRunReport(options);
    return 0;
}
