/**
 * @file
 * Scaling check: does the combined model's *expected gain* prediction
 * track the simulator as machines grow beyond the paper's 64-node
 * validation platform?
 *
 * For each machine size (8x8 through 16x16 tori) the harness runs the
 * synthetic application under ideal (identity) and random mappings,
 * reports the measured gain r_t(ideal)/r_t(random), and compares it
 * with the model's prediction calibrated from the ideal run's
 * measured parameters. This extends the paper's Section 3 validation
 * (which stops at 64 nodes) toward the Section 4 extrapolation
 * regime.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace locsim;

namespace {

/** Radixes whose runs are capped to quick-mode windows. */
constexpr int kLargeRadix = 32;

/** Parse a comma-separated radix list ("8,16,48"). */
std::vector<int>
parseRadixList(const std::string &arg)
{
    std::vector<int> radixes;
    std::size_t pos = 0;
    while (pos <= arg.size()) {
        const std::size_t comma = arg.find(',', pos);
        const std::string item =
            arg.substr(pos, comma == std::string::npos
                                ? std::string::npos
                                : comma - pos);
        char *end = nullptr;
        const long radix = std::strtol(item.c_str(), &end, 10);
        if (item.empty() || end == nullptr || *end != '\0' ||
            radix < 2) {
            LOCSIM_FATAL("--radix-list expects comma-separated "
                         "radixes >= 2, got '",
                         arg, "'");
        }
        radixes.push_back(static_cast<int>(radix));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return radixes;
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel --radix-list before the common parser (the micro_perf
    // custom-flag convention); the manifest still records the full
    // command line below.
    std::vector<int> radixes = {8, 10, 12, 16, 48};
    std::vector<const char *> filtered;
    for (int i = 0; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--radix-list=", 13) == 0) {
            radixes = parseRadixList(arg + 13);
            continue;
        }
        if (std::strcmp(arg, "--radix-list") == 0) {
            if (i + 1 >= argc)
                LOCSIM_FATAL("--radix-list needs a value");
            radixes = parseRadixList(argv[++i]);
            continue;
        }
        filtered.push_back(arg);
    }

    bench::HarnessOptions options = bench::parseHarnessOptions(
        static_cast<int>(filtered.size()), filtered.data(),
        "scaling_check",
        "measured vs predicted locality gain as machines scale");
    options.argv.assign(argv, argv + argc);
    if (!options.quick)
        options.window = 12000; // larger machines cost more per cycle

    std::printf("=== Locality gain, simulation vs model, vs machine "
                "size ===\n\n");

    util::TextTable table({"nodes", "d random", "gain sim",
                           "gain model", "r_t ideal", "r_t random"});
    std::vector<std::vector<std::string>> csv_rows;
    for (int radix : radixes) {
        const auto nodes =
            static_cast<std::uint32_t>(radix * radix);
        // Large radixes pay far more per cycle; cap them to the quick
        // defaults so one scaling point doesn't dominate the sweep.
        bench::HarnessOptions point = options;
        if (radix >= kLargeRadix) {
            point.warmup = std::min<std::uint64_t>(point.warmup, 2000);
            point.window = std::min<std::uint64_t>(point.window, 6000);
        }
        auto run = [&](const workload::Mapping &mapping) {
            machine::MachineConfig config;
            config.radix = radix;
            return bench::runCachedMeasurement(point, config,
                                               mapping);
        };
        const auto ideal = run(workload::Mapping::identity(nodes));
        const auto random =
            run(workload::Mapping::random(nodes, 47));

        // Model prediction calibrated from the ideal run's measured
        // application parameters, evaluated at both distances.
        const model::Prediction p_ideal =
            machine::predictFromMeasurement(ideal, 1,
                                            ideal.avg_hops);
        const model::Prediction p_random =
            machine::predictFromMeasurement(ideal, 1,
                                            random.avg_hops);
        const double gain_sim = ideal.txn_rate / random.txn_rate;
        const double gain_model =
            p_ideal.txn_rate / p_random.txn_rate;

        table.newRow()
            .cell(static_cast<long long>(nodes))
            .cell(random.avg_hops, 2)
            .cell(gain_sim, 2)
            .cell(gain_model, 2)
            .cell(ideal.txn_rate, 5)
            .cell(random.txn_rate, 5);
        csv_rows.push_back(
            {std::to_string(nodes),
             util::formatDouble(random.avg_hops, 3),
             util::formatDouble(gain_sim, 4),
             util::formatDouble(gain_model, 4)});
    }
    table.print(std::cout);

    std::printf("\nThe model's gain prediction tracks the simulator "
                "as distance grows with machine\nsize -- the trend "
                "Figure 7 extrapolates to a million processors.\n");

    if (!options.csv_path.empty()) {
        util::CsvWriter csv(options.csv_path);
        csv.header({"nodes", "d_random", "gain_sim", "gain_model"});
        for (const auto &row : csv_rows)
            csv.row(row);
    }
    bench::maybeReportCacheStats(options);
    bench::maybeWriteRunReport(options);
    return 0;
}
