/**
 * @file
 * Figure 6: average per-hop message latency T_h versus machine size,
 * for the Section 3 application with two hardware contexts under
 * random mappings, and for the same application with its computation
 * grain artificially increased tenfold.
 *
 * Paper claims: T_h approaches the Equation 16 limit B*s/(2n)
 * (about 9.8 network cycles at s = 3.26); the small-grain application
 * reaches over 80% of the limit within a few thousand processors; the
 * large-grain variant approaches the same limit far more slowly.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/common.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace locsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseHarnessOptions(
        argc, argv, "fig6_per_hop_latency",
        "Figure 6: per-hop latency vs machine size (model)");

    std::printf("=== Figure 6: per-hop latency T_h vs machine size "
                "===\n\n");

    // Base: two contexts, random mapping; variant: 10x grain.
    model::StudyConfig base = model::alewifeStudy(2, 64, false);
    model::StudyConfig coarse = base;
    coarse.application.run_length *= 10.0;

    model::LocalityAnalysis base_analysis(base);
    const double limit = base_analysis.limitingPerHopLatency();
    std::printf("limiting T_h = B*s/(2n) = %.2f network cycles "
                "(paper: ~9.8 at measured s = 3.26)\n\n",
                limit);

    std::vector<double> sizes;
    for (double n = 10.0; n <= 1.05e6; n *= std::sqrt(10.0))
        sizes.push_back(n);

    const auto small_grain = sweepPerHopLatency(base, sizes);
    const auto large_grain = sweepPerHopLatency(coarse, sizes);

    util::TextTable table({"processors", "T_h (small grain)",
                           "% of limit", "T_h (10x grain)",
                           "% of limit"});
    std::vector<std::vector<std::string>> csv_rows;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        table.newRow()
            .cell(static_cast<long long>(sizes[i]))
            .cell(small_grain[i].second, 2)
            .cell(100.0 * small_grain[i].second / limit, 1)
            .cell(large_grain[i].second, 2)
            .cell(100.0 * large_grain[i].second / limit, 1);
        csv_rows.push_back(
            {util::formatDouble(sizes[i], 0),
             util::formatDouble(small_grain[i].second, 4),
             util::formatDouble(large_grain[i].second, 4)});
    }
    table.print(std::cout);

    // The paper's 80%-within-a-few-thousand anchor.
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        if (small_grain[i].second >= 0.8 * limit) {
            std::printf("\nSmall-grain application reaches 80%% of "
                        "the limit at ~%.0f processors "
                        "(paper: \"a few thousand\")\n",
                        sizes[i]);
            break;
        }
    }

    if (!options.csv_path.empty()) {
        util::CsvWriter csv(options.csv_path);
        csv.header({"processors", "Th_small_grain", "Th_10x_grain"});
        for (const auto &row : csv_rows)
            csv.row(row);
    }
    bench::maybeWriteRunReport(options);
    return 0;
}
