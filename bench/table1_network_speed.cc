/**
 * @file
 * Table 1: impact of relative network speed on the expected gain from
 * exploiting physical locality, for the one-context application at
 * one thousand and one million processors.
 *
 * "2x faster" is the base architecture (switches clocked twice as
 * fast as processors); each following row halves the relative network
 * speed. Paper values: 2.1 / 41.2 (2x faster), 3.1 / 68.3 (same),
 * 4.5 / 101.6 (2x slower), 5.9 / 134.3 (4x slower); slowing the
 * network 8x raises the bounds by roughly a factor of three overall.
 */

#include <cstdio>
#include <iostream>

#include "bench/common.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace locsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseHarnessOptions(
        argc, argv, "table1_network_speed",
        "Table 1: expected gain vs relative network speed (model)");

    std::printf("=== Table 1: relative network speed vs expected "
                "gain (one context) ===\n\n");

    struct Row
    {
        const char *label;
        double speed_factor; // relative to the base architecture
        double paper_1k;     // paper's reported values (for reference)
        double paper_1m;
    };
    const Row rows[] = {
        {"2x faster (base)", 1.0, 2.1, 41.2},
        {"same speed", 0.5, 3.1, 68.3},
        {"2x slower", 0.25, 4.5, 101.6},
        {"4x slower", 0.125, 5.9, 134.3},
        {"8x slower", 0.0625, -1.0, -1.0}, // paper: ~3x the base
    };

    util::TextTable table({"network speed", "gain 10^3 (ours)",
                           "paper", "gain 10^6 (ours)", "paper"});
    std::vector<std::vector<std::string>> csv_rows;
    double base_1k = 0.0, base_1m = 0.0, last_1k = 0.0, last_1m = 0.0;
    for (const Row &row : rows) {
        const model::StudyConfig base_cfg =
            model::alewifeStudy(1, 1000, false);
        model::StudyConfig thousand =
            model::withRelativeNetworkSpeed(base_cfg,
                                            row.speed_factor);
        model::StudyConfig million = thousand;
        million.machine.processors = 1e6;

        const double g1k =
            model::LocalityAnalysis(thousand).expectedGain().gain;
        const double g1m =
            model::LocalityAnalysis(million).expectedGain().gain;
        if (row.speed_factor == 1.0) {
            base_1k = g1k;
            base_1m = g1m;
        }
        last_1k = g1k;
        last_1m = g1m;

        auto paper_cell = [](double v) {
            return v < 0.0 ? std::string("--")
                           : util::formatDouble(v, 1);
        };
        table.newRow()
            .cell(row.label)
            .cell(g1k, 1)
            .cell(paper_cell(row.paper_1k))
            .cell(g1m, 1)
            .cell(paper_cell(row.paper_1m));
        csv_rows.push_back({row.label,
                            util::formatDouble(row.speed_factor, 4),
                            util::formatDouble(g1k, 3),
                            util::formatDouble(g1m, 3)});
    }
    table.print(std::cout);

    std::printf("\n8x slower vs base: %.1fx at 10^3, %.1fx at 10^6 "
                "(paper: \"roughly a factor of three\")\n",
                last_1k / base_1k, last_1m / base_1m);

    if (!options.csv_path.empty()) {
        util::CsvWriter csv(options.csv_path);
        csv.header(
            {"label", "speed_factor", "gain_1e3", "gain_1e6"});
        for (const auto &row : csv_rows)
            csv.row(row);
    }
    bench::maybeWriteRunReport(options);
    return 0;
}
