/**
 * @file
 * Mesh vs torus: the paper simulates radix-8 2-D *tori* while the
 * physical Alewife machine was a *mesh*. This harness quantifies what
 * the wraparound links are worth on the validation platform: for each
 * mapping of the synthetic application, run the cycle-level machine
 * on both fabrics and compare distance, latency, and delivered
 * transaction rate.
 *
 * Expected shape: identical at d = 1 (no boundary crossings), with
 * the torus pulling ahead as mappings spread out (shorter distances
 * and twice the bisection bandwidth for boundary-crossing traffic).
 */

#include <cstdio>
#include <iostream>

#include "bench/common.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace locsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseHarnessOptions(
        argc, argv, "mesh_vs_torus",
        "torus (paper) vs mesh (physical Alewife) comparison");

    std::printf("=== Mesh vs torus on the 64-node validation "
                "platform (one context) ===\n\n");

    net::TorusTopology torus_topo(8, 2, true);
    net::TorusTopology mesh_topo(8, 2, false);
    const auto family = workload::experimentMappings(torus_topo);

    util::TextTable table({"mapping", "d torus", "d mesh",
                           "T_m torus", "T_m mesh", "r_t torus",
                           "r_t mesh", "torus/mesh"});
    std::vector<std::vector<std::string>> csv_rows;
    for (const auto &named : family) {
        auto run = [&](bool wraparound) {
            machine::MachineConfig config;
            config.wraparound = wraparound;
            return bench::runCachedMeasurement(options, config,
                                               named.mapping);
        };
        const auto torus = run(true);
        const auto mesh = run(false);
        table.newRow()
            .cell(named.name)
            .cell(torus.avg_hops, 2)
            .cell(mesh.avg_hops, 2)
            .cell(torus.message_latency, 1)
            .cell(mesh.message_latency, 1)
            .cell(torus.txn_rate, 5)
            .cell(mesh.txn_rate, 5)
            .cell(torus.txn_rate / mesh.txn_rate, 2);
        csv_rows.push_back(
            {named.name, util::formatDouble(torus.avg_hops, 3),
             util::formatDouble(mesh.avg_hops, 3),
             util::formatDouble(torus.txn_rate, 6),
             util::formatDouble(mesh.txn_rate, 6)});
    }
    table.print(std::cout);

    std::printf("\nWell-placed applications are indifferent to the "
                "wraparound links; poorly placed\nones pay the "
                "mesh's longer distances (k/3 vs k/4 per dimension) "
                "and halved edge\nbisection -- locality matters "
                "*more* on a mesh.\n");

    if (!options.csv_path.empty()) {
        util::CsvWriter csv(options.csv_path);
        csv.header({"mapping", "d_torus", "d_mesh", "rate_torus",
                    "rate_mesh"});
        for (const auto &row : csv_rows)
            csv.row(row);
    }
    bench::maybeReportCacheStats(options);
    bench::maybeWriteRunReport(options);
    return 0;
}
