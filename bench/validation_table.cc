/**
 * @file
 * Model validation summary (Section 3.3): for every mapping and
 * context count, compare measured and predicted message rate,
 * message latency, and channel utilization, plus the measured
 * application parameters (d, g, c, B) against the paper's a-priori
 * values (d per mapping, g = 3.2, c = 2, B = 12).
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/common.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace locsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseHarnessOptions(
        argc, argv, "validation_table",
        "Section 3.3 model-vs-simulation validation summary");

    std::printf("=== Model validation: simulation vs combined model "
                "===\n\n");

    const auto points =
        bench::runValidationSims({1, 2, 4}, options);

    // Output stays byte-identical unless --attribution is given: the
    // decomposition columns are appended, never reordered.
    std::vector<std::string> headers = {"p", "mapping", "d", "g", "c",
                                        "r_m sim", "r_m model", "err%",
                                        "T_m sim", "T_m model",
                                        "rho sim", "rho model"};
    if (options.attribution) {
        headers.insert(headers.end(),
                       {"T_ser", "T_hop", "T_cont"});
    }
    util::TextTable table(headers);
    stats::Accumulator rate_err, latency_err;
    std::vector<std::vector<std::string>> csv_rows;
    for (const auto &p : points) {
        const model::Prediction pred = bench::predictFromMeasurement(
            p.m, p.contexts, p.m.avg_hops);
        const double err = 100.0 *
                           (pred.injection_rate - p.m.message_rate) /
                           p.m.message_rate;
        rate_err.add(std::fabs(err));
        latency_err.add(
            std::fabs(pred.message_latency - p.m.message_latency));
        auto &row = table.newRow();
        row.cell(static_cast<long long>(p.contexts))
            .cell(p.mapping)
            .cell(p.m.avg_hops, 2)
            .cell(p.m.messages_per_txn, 2)
            .cell(p.m.critical_messages, 2)
            .cell(p.m.message_rate, 5)
            .cell(pred.injection_rate, 5)
            .cell(err, 1)
            .cell(p.m.message_latency, 1)
            .cell(pred.message_latency, 1)
            .cell(p.m.utilization, 3)
            .cell(pred.utilization, 3);
        std::vector<std::string> csv_row = {
            std::to_string(p.contexts), p.mapping,
            util::formatDouble(p.m.avg_hops, 3),
            util::formatDouble(p.m.message_rate, 6),
            util::formatDouble(pred.injection_rate, 6),
            util::formatDouble(p.m.message_latency, 3),
            util::formatDouble(pred.message_latency, 3)};
        if (options.attribution) {
            const auto attr = bench::summarizeAttribution(p.m);
            row.cell(attr.serialization, 1)
                .cell(attr.hops, 1)
                .cell(attr.contention, 1);
            csv_row.push_back(
                util::formatDouble(attr.serialization, 3));
            csv_row.push_back(util::formatDouble(attr.hops, 3));
            csv_row.push_back(
                util::formatDouble(attr.contention, 3));
        }
        csv_rows.push_back(std::move(csv_row));
    }
    table.print(std::cout);

    std::printf("\nmean |rate error| = %.1f%%, mean |latency error| "
                "= %.1f network cycles\n",
                rate_err.mean(), latency_err.mean());
    std::printf("paper: rates within a few percent; latencies within "
                "a few network cycles\n");

    if (!options.csv_path.empty()) {
        util::CsvWriter csv(options.csv_path);
        std::vector<std::string> csv_header = {
            "contexts", "mapping", "distance", "rate_measured",
            "rate_model", "latency_measured", "latency_model"};
        if (options.attribution) {
            csv_header.insert(csv_header.end(),
                              {"lat_serialization", "lat_hops",
                               "lat_contention"});
        }
        csv.header(csv_header);
        for (const auto &row : csv_rows)
            csv.row(row);
    }
    bench::maybeWriteTrace(points, options);
    bench::maybeReportCacheStats(options);
    bench::maybeWriteRunReport(options, points);
    return 0;
}
