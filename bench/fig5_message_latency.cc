/**
 * @file
 * Figure 5: average message latency T_m versus average communication
 * distance d — simulation measurements against combined-model
 * predictions, for one, two, and four hardware contexts.
 *
 * Paper claim: "predicted values for message latency track measured
 * values to within a few network cycles."
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/common.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace locsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseHarnessOptions(
        argc, argv, "fig5_message_latency",
        "Figure 5: message latency vs distance, simulation and "
        "model");

    std::printf("=== Figure 5: message latency vs communication "
                "distance ===\n\n");

    const auto points =
        bench::runValidationSims({1, 2, 4}, options);

    util::TextTable table({"contexts", "d", "T_m measured",
                           "T_m model", "diff (net cyc)"});
    double worst = 0.0;
    std::vector<std::vector<std::string>> csv_rows;
    for (const auto &p : points) {
        const model::Prediction pred = bench::predictFromMeasurement(
            p.m, p.contexts, p.m.avg_hops);
        const double diff =
            pred.message_latency - p.m.message_latency;
        worst = std::max(worst, std::fabs(diff));
        table.newRow()
            .cell(static_cast<long long>(p.contexts))
            .cell(p.m.avg_hops, 2)
            .cell(p.m.message_latency, 1)
            .cell(pred.message_latency, 1)
            .cell(diff, 1);
        csv_rows.push_back(
            {std::to_string(p.contexts),
             util::formatDouble(p.m.avg_hops, 3),
             util::formatDouble(p.m.message_latency, 3),
             util::formatDouble(pred.message_latency, 3),
             util::formatDouble(diff, 3)});
    }
    table.print(std::cout);
    std::printf("\nWorst-case deviation: %.1f network cycles (paper: "
                "\"within a few network cycles\")\n",
                worst);

    if (!options.csv_path.empty()) {
        util::CsvWriter csv(options.csv_path);
        csv.header({"contexts", "distance", "latency_measured",
                    "latency_model", "diff"});
        for (const auto &row : csv_rows)
            csv.row(row);
    }
    return 0;
}
