/**
 * @file
 * Figure 5: average message latency T_m versus average communication
 * distance d — simulation measurements against combined-model
 * predictions, for one, two, and four hardware contexts.
 *
 * Paper claim: "predicted values for message latency track measured
 * values to within a few network cycles."
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/common.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace locsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseHarnessOptions(
        argc, argv, "fig5_message_latency",
        "Figure 5: message latency vs distance, simulation and "
        "model");

    std::printf("=== Figure 5: message latency vs communication "
                "distance ===\n\n");

    const auto points =
        bench::runValidationSims({1, 2, 4}, options);

    // Columns are appended only under --attribution so the default
    // output stays byte-identical.
    std::vector<std::string> headers = {"contexts", "d",
                                        "T_m measured", "T_m model",
                                        "diff (net cyc)"};
    if (options.attribution)
        headers.insert(headers.end(), {"T_ser", "T_hop", "T_cont"});
    util::TextTable table(headers);
    double worst = 0.0;
    std::vector<std::vector<std::string>> csv_rows;
    for (const auto &p : points) {
        const model::Prediction pred = bench::predictFromMeasurement(
            p.m, p.contexts, p.m.avg_hops);
        const double diff =
            pred.message_latency - p.m.message_latency;
        worst = std::max(worst, std::fabs(diff));
        auto &row = table.newRow();
        row.cell(static_cast<long long>(p.contexts))
            .cell(p.m.avg_hops, 2)
            .cell(p.m.message_latency, 1)
            .cell(pred.message_latency, 1)
            .cell(diff, 1);
        std::vector<std::string> csv_row = {
            std::to_string(p.contexts),
            util::formatDouble(p.m.avg_hops, 3),
            util::formatDouble(p.m.message_latency, 3),
            util::formatDouble(pred.message_latency, 3),
            util::formatDouble(diff, 3)};
        if (options.attribution) {
            const auto attr = bench::summarizeAttribution(p.m);
            row.cell(attr.serialization, 1)
                .cell(attr.hops, 1)
                .cell(attr.contention, 1);
            csv_row.push_back(
                util::formatDouble(attr.serialization, 3));
            csv_row.push_back(util::formatDouble(attr.hops, 3));
            csv_row.push_back(
                util::formatDouble(attr.contention, 3));
        }
        csv_rows.push_back(std::move(csv_row));
    }
    table.print(std::cout);
    std::printf("\nWorst-case deviation: %.1f network cycles (paper: "
                "\"within a few network cycles\")\n",
                worst);

    if (!options.csv_path.empty()) {
        util::CsvWriter csv(options.csv_path);
        std::vector<std::string> csv_header = {
            "contexts", "distance", "latency_measured",
            "latency_model", "diff"};
        if (options.attribution) {
            csv_header.insert(csv_header.end(),
                              {"lat_serialization", "lat_hops",
                               "lat_contention"});
        }
        csv.header(csv_header);
        for (const auto &row : csv_rows)
            csv.row(row);
    }
    bench::maybeWriteTrace(points, options);
    bench::maybeReportCacheStats(options);
    bench::maybeWriteRunReport(options, points);
    return 0;
}
