/**
 * @file
 * Locality gain study: where does exploiting physical locality pay
 * off, and by how much?
 *
 * Sweeps machine size, context count, network dimension, and relative
 * network speed, reporting the expected gain for each configuration —
 * the kind of design-space exploration the paper's framework was
 * built for (Section 4).
 *
 *   ./locality_gain_study --max-processors 1e6 --contexts 2
 */

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "model/alewife.hh"
#include "model/locality.hh"
#include "runner/runner.hh"
#include "util/options.hh"
#include "util/table.hh"

using namespace locsim;

int
main(int argc, char **argv)
{
    util::OptionParser opts("locality_gain_study",
                            "expected-gain design space exploration");
    opts.addDouble("contexts", "hardware contexts p", 1);
    opts.addDouble("max-processors", "largest machine size", 1e6);
    opts.parse(argc, argv);
    const double contexts = opts.getDouble("contexts");
    const double max_n = opts.getDouble("max-processors");

    std::printf("=== Gain vs machine size and network dimension "
                "(p = %.0f) ===\n\n",
                contexts);
    {
        // Evaluate the (machine size x dimension) grid on the
        // experiment runner; each cell is an independent model
        // evaluation, and results come back in grid order.
        std::vector<double> sizes;
        for (double n = 64; n <= max_n * 1.01; n *= 4)
            sizes.push_back(n);
        const std::vector<int> dim_choices = {2, 3, 4};
        const std::size_t cols = dim_choices.size();
        const std::vector<double> gains = runner::parallelMap(
            sizes.size() * cols, [&](std::size_t i) {
                model::StudyConfig config = model::alewifeStudy(
                    contexts, sizes[i / cols]);
                config.machine.network.dims = dim_choices[i % cols];
                return model::LocalityAnalysis(config)
                    .expectedGain()
                    .gain;
            });

        util::TextTable table({"processors", "gain n=2", "gain n=3",
                               "gain n=4"});
        for (std::size_t row = 0; row < sizes.size(); ++row) {
            table.newRow().cell(static_cast<long long>(sizes[row]));
            for (std::size_t col = 0; col < cols; ++col)
                table.cell(gains[row * cols + col], 2);
        }
        table.print(std::cout);
        std::printf("\nHigher-dimensional networks shorten random-"
                    "mapping distances and lower the\nlimiting "
                    "per-hop latency, so locality buys less "
                    "(Section 4.2).\n\n");
    }

    std::printf("=== Gain vs relative network speed (N = 4096, "
                "p = %.0f) ===\n\n",
                contexts);
    {
        util::TextTable table({"network speed vs base", "gain",
                               "random t_t (net cyc)",
                               "ideal t_t (net cyc)"});
        const model::StudyConfig base =
            model::alewifeStudy(contexts, 4096);
        for (double factor : {2.0, 1.0, 0.5, 0.25, 0.125}) {
            const model::GainResult r =
                model::LocalityAnalysis(
                    model::withRelativeNetworkSpeed(base, factor))
                    .expectedGain();
            char label[32];
            std::snprintf(label, sizeof(label), "%.3gx", factor);
            table.newRow()
                .cell(label)
                .cell(r.gain, 2)
                .cell(r.random.inter_txn_time, 1)
                .cell(r.ideal.inter_txn_time, 1);
        }
        table.print(std::cout);
        std::printf("\nThe leaner the network relative to the "
                    "processors, the more exploiting\nlocality "
                    "matters (Table 1's trend).\n\n");
    }

    std::printf("=== Gain vs computation grain (N = 4096, "
                "p = %.0f) ===\n\n",
                contexts);
    {
        util::TextTable table({"T_r (proc cycles)", "gain",
                               "random rho"});
        for (double grain : {2.0, 8.0, 32.0, 128.0, 512.0}) {
            model::StudyConfig config =
                model::alewifeStudy(contexts, 4096);
            config.application.run_length = grain;
            const model::GainResult r =
                model::LocalityAnalysis(config).expectedGain();
            table.newRow()
                .cell(grain, 0)
                .cell(r.gain, 2)
                .cell(r.random.utilization, 3);
        }
        table.print(std::cout);
        std::printf("\nCoarse-grain applications are compute-bound "
                    "and gain little; the smaller the\ngrain, the "
                    "larger the payoff from placing communicating "
                    "threads nearby\n(the paper's closing "
                    "corollary).\n");
    }
    return 0;
}
