/**
 * @file
 * Mapping explorer: evaluate thread-to-processor mappings for the
 * nearest-neighbour application, first analytically (distance
 * metrics + combined model), then empirically on the cycle-level
 * simulator, and rank them by delivered performance.
 *
 *   ./mapping_explorer --simulate --contexts 2
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "machine/machine.hh"
#include "model/alewife.hh"
#include "model/combined_model.hh"
#include "util/options.hh"
#include "util/table.hh"
#include "workload/mapping.hh"

using namespace locsim;

int
main(int argc, char **argv)
{
    util::OptionParser opts("mapping_explorer",
                            "rank thread-to-processor mappings");
    opts.addInt("contexts", "hardware contexts", 1);
    opts.addFlag("simulate",
                 "also run the cycle-level simulator per mapping");
    opts.addInt("window", "simulation window, processor cycles",
                12000);
    opts.parse(argc, argv);
    const int contexts = static_cast<int>(opts.getInt("contexts"));
    const bool simulate = opts.getFlag("simulate");

    net::TorusTopology topo(8, 2);
    const auto family = workload::experimentMappings(topo);

    std::printf("=== Mapping family on the 64-node radix-8 2-D torus "
                "===\n\n");

    struct Row
    {
        std::string name;
        double distance;
        double model_rate;
        double sim_rate = 0.0;
    };
    std::vector<Row> rows;

    for (const auto &named : family) {
        Row row;
        row.name = named.name;
        row.distance = named.avg_distance;

        // Analytic estimate: combined model at this distance with
        // the calibrated Section 3 application.
        model::StudyConfig config = model::alewifeStudy(contexts, 64);
        model::LocalityAnalysis analysis(config);
        row.model_rate =
            analysis.predictAtDistance(named.avg_distance).txn_rate;

        if (simulate) {
            machine::MachineConfig mc;
            mc.contexts = contexts;
            machine::Machine machine(mc, named.mapping);
            const auto m = machine.run(
                3000,
                static_cast<std::uint64_t>(opts.getInt("window")));
            row.sim_rate = m.txn_rate;
        }
        rows.push_back(row);
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.distance < b.distance;
              });

    util::TextTable table(
        simulate
            ? std::vector<std::string>{"mapping", "d", "model r_t",
                                       "sim r_t", "sim/best"}
            : std::vector<std::string>{"mapping", "d", "model r_t",
                                       "model/best"});
    const double best = simulate
                            ? std::max_element(
                                  rows.begin(), rows.end(),
                                  [](const Row &a, const Row &b) {
                                      return a.sim_rate < b.sim_rate;
                                  })
                                  ->sim_rate
                            : rows.front().model_rate;
    for (const auto &row : rows) {
        table.newRow().cell(row.name).cell(row.distance, 2).cell(
            row.model_rate, 5);
        if (simulate) {
            table.cell(row.sim_rate, 5)
                .cell(row.sim_rate / best, 2);
        } else {
            table.cell(row.model_rate / best, 2);
        }
    }
    table.print(std::cout);

    std::printf("\nShorter mappings win, but with bounded margin: "
                "latency is linear in distance\n(Section 4.1), so "
                "halving d can at most double throughput, and fixed "
                "overheads\ndilute even that.\n");
    return 0;
}
