/**
 * @file
 * Full-system simulation demo: runs the cycle-level Alewife-like
 * simulator (flit-level torus network, directory coherence, block-
 * multithreaded processors) on the synthetic nearest-neighbour
 * application under a chosen thread-to-processor mapping, then
 * compares the measurements with the combined model's prediction.
 *
 *   ./alewife_sim_demo --mapping random --contexts 2 --window 30000
 *
 * Observability: --trace-out dumps a Chrome trace_event JSON of the
 * run (add --trace-detail flit for per-flit events), --sample-period
 * prints the metrics sampler's time-series as CSV on stdout, and
 * --log-level controls verbosity.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "cache/key.hh"
#include "machine/calibration.hh"
#include "machine/machine.hh"
#include "model/alewife.hh"
#include "model/combined_model.hh"
#include "obs/build_info.hh"
#include "obs/counters.hh"
#include "obs/profiler.hh"
#include "obs/report.hh"
#include "obs/sampler.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "util/table.hh"
#include "workload/mapping.hh"

using namespace locsim;

int
main(int argc, char **argv)
{
    util::OptionParser opts("alewife_sim_demo",
                            "cycle-level simulation of the Section 3 "
                            "validation platform");
    opts.addString("mapping",
                   "identity | random | one of the experiment family "
                   "names",
                   "random");
    opts.addInt("contexts", "hardware contexts (1, 2, or 4)", 1);
    opts.addInt("warmup", "warmup processor cycles", 6000);
    opts.addInt("window", "measurement window processor cycles",
                20000);
    opts.addInt("seed", "seed for random mappings", 12345);
    opts.addFlag("build-info",
                 "print build provenance (git SHA, compiler, flags) "
                 "and exit");
    util::addObservabilityOptions(opts);
    opts.parse(argc, argv);
    if (opts.getFlag("build-info")) {
        obs::printBuildInfo(std::cout);
        return 0;
    }
    const util::ObservabilityOptions obs =
        util::applyObservabilityOptions(opts);
    const auto start_time = std::chrono::steady_clock::now();

    net::TorusTopology topo(8, 2);
    const std::string which = opts.getString("mapping");
    const auto family = workload::experimentMappings(
        topo, static_cast<std::uint64_t>(opts.getInt("seed")));
    const workload::NamedMapping *chosen = nullptr;
    for (const auto &named : family) {
        if (named.name == which)
            chosen = &named;
    }
    if (chosen == nullptr) {
        std::fprintf(stderr, "available mappings:");
        for (const auto &named : family)
            std::fprintf(stderr, " %s", named.name.c_str());
        std::fprintf(stderr, "\n");
        return 1;
    }

    machine::MachineConfig config;
    config.contexts = static_cast<int>(opts.getInt("contexts"));
    config.trace.enabled = !obs.trace_out.empty();
    config.trace.detail = obs.flit_detail ? obs::TraceDetail::Flit
                                          : obs::TraceDetail::Message;
    config.sample_period = static_cast<sim::Tick>(obs.sample_period);

    // --run-report: profile the run on a (resolved shards) x 1 grid.
    std::unique_ptr<obs::Profiler> profiler;
    if (!obs.run_report.empty()) {
        const int shards = machine::Machine::resolveShardCount(
            config, topo.nodeCount());
        profiler = std::make_unique<obs::Profiler>(shards, 1);
        config.profiler = profiler.get();
    }
    // Heap-held so the machine can be destroyed (publishing its
    // process counters) before the run manifest snapshots them.
    auto machine_ptr =
        std::make_unique<machine::Machine>(config, chosen->mapping);
    machine::Machine &machine = *machine_ptr;

    std::printf("simulating 64-node radix-8 2-D torus, %d context(s), "
                "mapping '%s' (d = %.2f)...\n",
                config.contexts, chosen->name.c_str(),
                chosen->avg_distance);
    const machine::Measurement m = machine.run(
        static_cast<std::uint64_t>(opts.getInt("warmup")),
        static_cast<std::uint64_t>(opts.getInt("window")));

    std::printf("\nmeasured application parameters: T_r = %.1f, "
                "g = %.2f, c = %.2f, B = %.0f, T_f(fit) = %.1f "
                "(network cycles)\n",
                m.run_length, m.messages_per_txn,
                m.critical_messages, m.avg_flits,
                m.fitted_fixed_overhead);
    std::printf("coherence checks: %llu loop iterations, %llu "
                "ordering violations\n\n",
                static_cast<unsigned long long>(m.iterations),
                static_cast<unsigned long long>(m.violations));

    // Combined-model prediction from the measured parameters
    // (Section 3.3's validation methodology).
    const model::Prediction p = machine::predictFromMeasurement(
        m, config.contexts, m.avg_hops);

    util::TextTable table({"quantity", "simulated", "model"});
    auto row = [&](const char *name, double sim, double mod,
                   int precision) {
        table.newRow().cell(name).cell(sim, precision).cell(
            mod, precision);
    };
    row("message rate r_m", m.message_rate, p.injection_rate, 5);
    row("inter-message time t_m", m.inter_message_time,
        p.inter_message_time, 1);
    row("message latency T_m", m.message_latency, p.message_latency,
        1);
    row("channel utilization rho", m.utilization, p.utilization, 3);
    row("inter-txn time t_t", m.inter_txn_time, p.inter_txn_time, 1);
    row("transaction latency T_t", m.txn_latency, p.txn_latency, 1);
    table.print(std::cout);

    if (machine.sampler() != nullptr) {
        std::printf("\nmetrics samples (period %llu ticks):\n",
                    static_cast<unsigned long long>(
                        machine.sampler()->period()));
        machine.sampler()->writeCsv(std::cout);
    }
    if (machine.tracer() != nullptr) {
        std::ofstream trace_os(obs.trace_out);
        if (!trace_os)
            LOCSIM_FATAL("cannot open --trace-out file '",
                         obs.trace_out, "'");
        machine.writeTrace(trace_os);
        LOCSIM_INFORM("wrote trace to ", obs.trace_out);
    }

    if (!obs.run_report.empty()) {
        const int shards = machine.shards();
        machine_ptr.reset(); // publish the machine's counters
        const auto warmup =
            static_cast<std::uint64_t>(opts.getInt("warmup"));
        const auto window =
            static_cast<std::uint64_t>(opts.getInt("window"));
        obs::RunReport report("alewife_sim_demo");
        report.setArgv(argc, argv);
        report.addConfig("mapping", chosen->name);
        report.addConfig("contexts",
                         static_cast<long long>(config.contexts));
        report.addConfig("warmup", static_cast<long long>(warmup));
        report.addConfig("window", static_cast<long long>(window));
        report.addConfig("seed", opts.getInt("seed"));
        report.addConfig("shards", static_cast<long long>(shards));
        report.addConfig("sample_period",
                         static_cast<long long>(config.sample_period));
        report.addSimulation(
            chosen->name + ".p" + std::to_string(config.contexts),
            cache::simKey(config, chosen->mapping, warmup, window));
        report.setCounters(
            obs::CounterRegistry::process().snapshot());
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_time)
                .count();
        report.setProfile(profiler.get(), wall);
        report.writeFile(obs.run_report);
        LOCSIM_INFORM("wrote run manifest to ", obs.run_report);
    }
    return 0;
}
