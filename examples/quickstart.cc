/**
 * @file
 * Quickstart: evaluate one machine/application configuration with
 * the combined model.
 *
 * Builds the paper's Section 3 application and Alewife-like machine
 * description, solves the combined model for ideal and random
 * thread placements, and prints the predicted operating points and
 * the expected gain from exploiting physical locality.
 *
 *   ./quickstart --processors 4096 --contexts 2 --dims 2
 */

#include <cstdio>

#include "model/alewife.hh"
#include "model/locality.hh"
#include "util/options.hh"
#include "util/table.hh"

#include <iostream>

using namespace locsim;

int
main(int argc, char **argv)
{
    util::OptionParser opts(
        "quickstart",
        "combined-model evaluation of one machine configuration");
    opts.addDouble("processors", "machine size N", 1024);
    opts.addDouble("contexts", "hardware contexts p", 1);
    opts.addInt("dims", "mesh dimension n", 2);
    opts.addDouble("run-length", "T_r in processor cycles", 8);
    opts.addDouble("fixed-overhead", "T_f in processor cycles", 40);
    opts.addDouble("clock-ratio",
                   "network cycles per processor cycle", 2);
    opts.parse(argc, argv);

    // 1. Describe the application (Section 2.1), the transaction
    //    mechanism (Section 2.2), and the machine (Section 2.4).
    model::StudyConfig config = model::alewifeStudy(
        opts.getDouble("contexts"), opts.getDouble("processors"));
    config.application.run_length = opts.getDouble("run-length");
    config.transaction.fixed_overhead =
        opts.getDouble("fixed-overhead");
    config.machine.net_clock_ratio = opts.getDouble("clock-ratio");
    config.machine.network.dims =
        static_cast<int>(opts.getInt("dims"));

    // 2. Solve the combined model for both mapping regimes.
    model::LocalityAnalysis analysis(config);
    const model::GainResult result = analysis.expectedGain();

    std::printf("machine: N = %.0f processors, %d-D torus, network "
                "clock %.2gx processor clock\n",
                config.machine.processors,
                config.machine.network.dims,
                config.machine.net_clock_ratio);
    std::printf("application: T_r = %.0f proc cycles, p = %.0f "
                "contexts, s = %.2f, limiting T_h = %.2f\n\n",
                config.application.run_length,
                config.application.contexts,
                analysis.nodeModel().latencySensitivity(),
                analysis.limitingPerHopLatency());

    util::TextTable table({"quantity", "ideal mapping",
                           "random mapping"});
    auto row = [&](const char *name, double a, double b,
                   int precision) {
        table.newRow().cell(name).cell(a, precision).cell(b,
                                                          precision);
    };
    row("avg distance d (hops)", result.ideal_distance,
        result.random_distance, 2);
    row("message latency T_m (net cyc)",
        result.ideal.message_latency, result.random.message_latency,
        1);
    row("per-hop latency T_h", result.ideal.per_hop_latency,
        result.random.per_hop_latency, 2);
    row("channel utilization rho", result.ideal.utilization,
        result.random.utilization, 3);
    row("message rate r_m (/net cyc)", result.ideal.injection_rate,
        result.random.injection_rate, 5);
    row("inter-txn time t_t (net cyc)", result.ideal.inter_txn_time,
        result.random.inter_txn_time, 1);
    row("transaction rate r_t", result.ideal.txn_rate,
        result.random.txn_rate, 5);
    table.print(std::cout);

    std::printf("\nexpected gain from exploiting physical locality: "
                "%.2fx\n",
                result.gain);
    return 0;
}
