/**
 * @file
 * Network saturation: drive the flit-level torus open loop at
 * increasing offered loads and watch latency diverge, then show how
 * the closed-loop combined model self-limits instead — the paper's
 * core argument against fixed-rate network analyses (Section 5).
 *
 *   ./network_saturation --radix 8 --dims 2
 */

#include <cstdio>
#include <iostream>

#include "model/alewife.hh"
#include "model/combined_model.hh"
#include "net/network.hh"
#include "net/traffic.hh"
#include "sim/engine.hh"
#include "util/options.hh"
#include "util/table.hh"

using namespace locsim;

int
main(int argc, char **argv)
{
    util::OptionParser opts("network_saturation",
                            "open-loop saturation vs closed-loop "
                            "self-limiting");
    opts.addInt("radix", "torus radix", 8);
    opts.addInt("dims", "torus dimensions", 2);
    opts.addInt("cycles", "cycles per operating point", 15000);
    opts.parse(argc, argv);
    const int radix = static_cast<int>(opts.getInt("radix"));
    const int dims = static_cast<int>(opts.getInt("dims"));
    const auto cycles = static_cast<sim::Tick>(opts.getInt("cycles"));

    std::printf("=== Open loop: offered load vs delivered latency "
                "(%d-ary %d-cube) ===\n\n",
                radix, dims);

    util::TextTable table({"offered rate", "delivered rate",
                           "rho", "T_m", "backlog/node"});
    for (double rate = 0.01; rate <= 0.09; rate += 0.01) {
        sim::Engine engine;
        net::NetworkConfig config;
        config.radix = radix;
        config.dims = dims;
        net::Network network(engine, config);
        engine.addClocked(&network, 1);
        net::TrafficConfig traffic;
        traffic.injection_rate = rate;
        net::TrafficGenerator gen(network, traffic);
        engine.addClocked(&gen, 1);

        engine.run(cycles / 3);
        network.resetStats();
        const sim::Tick start = engine.now();
        engine.run(cycles);
        const double window =
            static_cast<double>(engine.now() - start);
        const double nodes =
            static_cast<double>(network.topology().nodeCount());
        const double delivered =
            static_cast<double>(network.stats().messages_delivered) /
            (window * nodes);
        const double backlog =
            static_cast<double>(network.stats().messages_sent -
                                network.stats().messages_delivered) /
            nodes;
        table.newRow()
            .cell(rate, 3)
            .cell(delivered, 4)
            .cell(network.channelUtilization(), 3)
            .cell(network.stats().latency.mean(), 1)
            .cell(backlog, 1);
    }
    table.print(std::cout);
    std::printf("\nPast saturation the delivered rate flattens and "
                "queues (backlog) grow without\nbound -- the regime "
                "where fixed-rate models stop making sense.\n\n");

    std::printf("=== Closed loop: the combined model self-limits "
                "===\n\n");
    util::TextTable closed({"avg distance d", "r_m", "rho", "T_m",
                            "T_h"});
    model::StudyConfig config = model::alewifeStudy(2, 4096);
    model::LocalityAnalysis analysis(config);
    for (double d : {1.0, 4.0, 16.0, 64.0, 256.0}) {
        const model::Prediction p = analysis.predictAtDistance(d);
        closed.newRow()
            .cell(d, 0)
            .cell(p.injection_rate, 5)
            .cell(p.utilization, 3)
            .cell(p.message_latency, 1)
            .cell(p.per_hop_latency, 2);
    }
    closed.print(std::cout);
    std::printf("\nNo matter how far communication must travel, "
                "feedback keeps rho below one and\npins per-hop "
                "latency at B*s/(2n) = %.2f network cycles "
                "(Equation 16).\n",
                analysis.limitingPerHopLatency());
    return 0;
}
