/**
 * @file
 * Trace replay: drive one node of the machine with a user-supplied
 * memory trace instead of a synthetic program — the path a downstream
 * user takes to evaluate their own application's reference stream.
 *
 * With no --trace argument, a small demonstration trace is generated
 * on the fly (streaming loads from a remote home plus periodic local
 * flag updates). The remaining 63 nodes run the standard synthetic
 * application as background traffic.
 *
 *   ./trace_replay --trace my_app.trace --background-contexts 1
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "coher/controller.hh"
#include "net/network.hh"
#include "proc/processor.hh"
#include "sim/engine.hh"
#include "util/options.hh"
#include "util/table.hh"
#include "workload/mapping.hh"
#include "workload/torus_app.hh"
#include "workload/trace_app.hh"

using namespace locsim;

namespace {

/** A built-in demonstration trace. */
std::vector<proc::Op>
demoTrace()
{
    std::ostringstream text;
    text << "# demo: stream 16 remote words, update a local flag\n";
    for (int i = 0; i < 16; ++i)
        text << "L 9 " << (100 + i) << " 6\n";
    text << "S 0 1 12\n";
    std::istringstream input(text.str());
    return workload::parseTrace(input);
}

} // namespace

int
main(int argc, char **argv)
{
    util::OptionParser opts("trace_replay",
                            "replay a memory trace on node 0 of the "
                            "64-node machine");
    opts.addString("trace", "trace file (see docs in trace_app.hh); "
                            "empty = built-in demo",
                   "");
    opts.addInt("window", "measurement window, processor cycles",
                20000);
    opts.parse(argc, argv);

    // Assemble the machine by hand: network + controllers
    // everywhere, the trace program on node 0, the synthetic
    // application elsewhere as background load.
    sim::Engine engine;
    net::NetworkConfig net_config;
    net::Network network(engine, net_config);
    engine.addClocked(&network, 1);
    const net::TorusTopology &topo = network.topology();

    coher::ProtocolConfig protocol;
    std::vector<std::unique_ptr<coher::CacheController>> controllers;
    for (sim::NodeId node = 0; node < topo.nodeCount(); ++node) {
        controllers.push_back(
            std::make_unique<coher::CacheController>(
                engine, network, node, protocol, 2));
        engine.addClocked(controllers.back().get(), 2);
    }

    const workload::Mapping mapping =
        workload::Mapping::identity(topo.nodeCount());
    const std::string trace_path = opts.getString("trace");
    std::vector<proc::Op> trace_ops =
        trace_path.empty() ? demoTrace()
                           : workload::loadTraceFile(trace_path);
    workload::TraceProgram trace_program(trace_ops);

    std::vector<std::unique_ptr<workload::TorusNeighborProgram>>
        background;
    std::vector<std::unique_ptr<proc::Processor>> processors;
    proc::ProcessorConfig proc_config;
    for (sim::NodeId node = 0; node < topo.nodeCount(); ++node) {
        proc::ThreadProgram *program;
        if (node == 0) {
            program = &trace_program;
        } else {
            background.push_back(
                std::make_unique<workload::TorusNeighborProgram>(
                    topo, mapping, 0, node,
                    workload::TorusAppConfig{}));
            program = background.back().get();
        }
        processors.push_back(std::make_unique<proc::Processor>(
            *controllers[node], proc_config,
            std::vector<proc::ThreadProgram *>{program}));
        engine.addClocked(processors.back().get(), 2);
    }

    const auto window =
        static_cast<std::uint64_t>(opts.getInt("window"));
    engine.run(window * 2);

    const coher::ControllerStats &cs = controllers[0]->stats();
    const proc::ProcessorStats &ps = processors[0]->stats();
    std::printf("replayed %llu ops over %llu full trace loops on "
                "node 0 (%llu processor cycles)\n\n",
                static_cast<unsigned long long>(ps.ops.value()),
                static_cast<unsigned long long>(
                    trace_program.loops()),
                static_cast<unsigned long long>(window));

    util::TextTable table({"metric", "value"});
    table.newRow().cell("transactions").cell(
        static_cast<long long>(cs.transactions.value()));
    table.newRow().cell("hit rate").cell(
        static_cast<double>(cs.hits.value()) /
            static_cast<double>(cs.loads.value() +
                                cs.stores.value()),
        3);
    table.newRow().cell("mean T_t (net cycles)").cell(
        cs.txn_latency.mean(), 1);
    table.newRow().cell("mean c (critical msgs)").cell(
        cs.critical_messages.mean(), 2);
    table.newRow().cell("idle cycles").cell(
        static_cast<long long>(ps.idle_cycles.value()));
    table.newRow().cell("work cycles").cell(
        static_cast<long long>(ps.work_cycles.value()));
    table.print(std::cout);

    std::printf("\nFeed the measured T_r, T_f, g, c into the "
                "combined model (see alewife_sim_demo)\nto predict "
                "how this reference stream scales with machine size "
                "and placement.\n");
    return 0;
}
