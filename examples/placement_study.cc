/**
 * @file
 * Placement study: how much locality does a workload *have*, how much
 * of it can a placement optimizer *recover*, and what is that worth
 * end to end?
 *
 * For a set of communication graphs (ring, grid, tree, torus,
 * expander), this example:
 *   1. reports the graph's structural locality (diameter, degree);
 *   2. optimizes thread placement on the 64-node torus via simulated
 *      annealing, reporting random vs optimized average distance;
 *   3. runs the cycle-level machine under both placements and
 *      reports delivered transaction rates.
 *
 *   ./placement_study --simulate
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "machine/machine.hh"
#include "util/options.hh"
#include "util/table.hh"
#include "workload/comm_graph.hh"
#include "workload/placement.hh"

using namespace locsim;

int
main(int argc, char **argv)
{
    util::OptionParser opts("placement_study",
                            "graph locality vs optimizer vs machine");
    opts.addFlag("simulate",
                 "run the cycle-level machine for each placement");
    opts.addInt("iterations", "annealing proposals", 120000);
    opts.addInt("window", "simulation window, processor cycles",
                10000);
    opts.parse(argc, argv);
    const bool simulate = opts.getFlag("simulate");

    net::TorusTopology topo(8, 2);

    struct Entry
    {
        const char *name;
        workload::CommGraph graph;
    };
    const Entry entries[] = {
        {"ring", workload::CommGraph::ring(64)},
        {"grid 8x8", workload::CommGraph::grid2d(8, 8)},
        {"binary tree", workload::CommGraph::binaryTree(64)},
        {"torus 8x8", workload::CommGraph::torus(8, 2)},
        {"expander deg 4",
         workload::CommGraph::randomPeers(64, 4, 17)},
    };

    std::printf("=== Structural locality and recoverable distance "
                "(64-node 2-D torus) ===\n\n");
    util::TextTable table(
        simulate ? std::vector<std::string>{"graph", "diam", "deg",
                                            "d random", "d optimized",
                                            "r_t random", "r_t opt",
                                            "speedup"}
                 : std::vector<std::string>{"graph", "diam", "deg",
                                            "d random",
                                            "d optimized",
                                            "recovered"});

    for (const Entry &entry : entries) {
        workload::PlacementConfig pconfig;
        pconfig.iterations =
            static_cast<std::uint64_t>(opts.getInt("iterations"));
        pconfig.seed = 29;
        const workload::PlacementResult placed =
            workload::optimizePlacement(entry.graph, topo, pconfig);

        table.newRow()
            .cell(entry.name)
            .cell(static_cast<long long>(entry.graph.diameter()))
            .cell(entry.graph.averageDegree(), 1)
            .cell(placed.initial_distance, 2)
            .cell(placed.distance, 2);

        if (!simulate) {
            table.cell(1.0 - placed.distance /
                                 placed.initial_distance,
                       2);
            continue;
        }

        auto graph_ptr = std::make_shared<workload::CommGraph>(
            entry.graph);
        auto run = [&](const workload::Mapping &mapping) {
            machine::MachineConfig config;
            config.workload = machine::WorkloadKind::Graph;
            config.graph = graph_ptr;
            machine::Machine machine(config, mapping);
            return machine
                .run(3000, static_cast<std::uint64_t>(
                               opts.getInt("window")))
                .txn_rate;
        };
        const double random_rate =
            run(workload::Mapping::random(64, 41));
        const double opt_rate = run(placed.mapping);
        table.cell(random_rate, 5)
            .cell(opt_rate, 5)
            .cell(opt_rate / random_rate, 2);
    }
    table.print(std::cout);

    std::printf(
        "\nHigh-diameter, low-degree graphs (ring, grid) embed "
        "almost perfectly -- their\nlocality is recoverable. The "
        "expander has none to recover (Section 1.1), and no\n"
        "placement will save it: its performance is set by the "
        "machine's bisection\nbandwidth, exactly the regime the "
        "paper's random-mapping analysis describes.\n");
    return 0;
}
