/**
 * @file
 * UCL versus NUCL: the paper's opening argument, quantified.
 *
 * Uniform-communication-latency (UCL) networks (multistage indirect
 * interconnects) make every pair of processors equally far apart, so
 * nothing can be gained from placement; non-uniform (NUCL) meshes
 * make some processors close, so well-placed applications win. This
 * example runs the same application model against both network
 * models as the machine scales:
 *
 *   - indirect k-ary butterfly (UCL): latency ~ log_k N for everyone;
 *   - 2-D torus with random placement (NUCL, locality ignored);
 *   - 2-D torus with ideal placement (NUCL, locality exploited).
 *
 *   ./ucl_vs_nucl --contexts 2 --switch-radix 4
 */

#include <cstdio>
#include <iostream>

#include "model/alewife.hh"
#include "model/indirect_network.hh"
#include "model/locality.hh"
#include "util/options.hh"
#include "util/table.hh"

using namespace locsim;

int
main(int argc, char **argv)
{
    util::OptionParser opts("ucl_vs_nucl",
                            "indirect (UCL) vs torus (NUCL) scaling");
    opts.addDouble("contexts", "hardware contexts", 1);
    opts.addInt("switch-radix",
                "ports per switch in the indirect network", 4);
    opts.parse(argc, argv);
    const double contexts = opts.getDouble("contexts");
    const int radix = static_cast<int>(opts.getInt("switch-radix"));

    std::printf("=== Per-processor transaction rate (x1000, network "
                "cycles^-1) as N scales ===\n");
    std::printf("same application on three interconnect options "
                "(p = %.0f)\n\n",
                contexts);

    util::TextTable table({"processors", "UCL butterfly",
                           "torus random", "torus ideal",
                           "ideal/UCL", "stages", "d(random)"});
    for (double n = 64; n <= 1.1e6; n *= 4) {
        model::StudyConfig config = model::alewifeStudy(contexts, n);
        model::LocalityAnalysis analysis(config);

        const model::IndirectNetworkModel indirect(
            n, radix, config.machine.network.message_flits);
        const model::Prediction ucl = solveIndirectClosedLoop(
            analysis.nodeModel(), indirect,
            config.enforce_issue_floor);
        const model::GainResult torus = analysis.expectedGain();

        table.newRow()
            .cell(static_cast<long long>(n))
            .cell(ucl.txn_rate * 1000.0, 3)
            .cell(torus.random.txn_rate * 1000.0, 3)
            .cell(torus.ideal.txn_rate * 1000.0, 3)
            .cell(torus.ideal.txn_rate / ucl.txn_rate, 2)
            .cell(static_cast<long long>(indirect.stages()))
            .cell(torus.random_distance, 1);
    }
    table.print(std::cout);

    std::printf(
        "\nThe UCL network degrades gently (latency ~ log N) but "
        "offers nothing to\nexploit; the randomly-placed torus "
        "degrades faster (distance ~ sqrt N); the\nwell-placed torus "
        "keeps single-hop latency at any size. The growing\n"
        "ideal/UCL ratio is the argument for NUCL machines plus "
        "locality-aware\nplacement (paper Section 1).\n");
    return 0;
}
